//! Monte-Carlo estimation of the SimRank random-surfer model (§5).
//!
//! §5 gives SimRank its meaning: `sim(a,b)` measures how soon two random
//! surfers starting at `a` and `b` are expected to meet, with per-step decay
//! `C1`/`C2` (equivalently self-transition mass). That definition is directly
//! simulable, which gives a *single-pair* estimator that needs no all-pairs
//! iteration — the natural tool when only a handful of pair scores are
//! needed (e.g. the desirability experiment, or online scoring of one
//! incoming query against bid queries).
//!
//! * [`mc_simrank_pair`] — uniform walk; unbiased for plain SimRank.
//! * [`mc_weighted_pair`] — walk with the §8.2 transition probabilities
//!   `p(α,i) = spread(i)·normalized_weight(α,i)` (walkers "die" with the
//!   self-transition mass, matching the weighted equations where unmoved
//!   walkers contribute nothing); unbiased for the raw weighted-walk score.
//! * [`mc_topk_into`] — the single-source extension: top-k neighbors of one
//!   query by simulating the source's walk trajectories *once* and coupling
//!   every frontier candidate's walks against that shared batch, instead of
//!   restarting the source per pair.
//!
//! The `ablation_montecarlo` bench sweeps walk counts against the exact
//! engines.

use crate::config::SimrankConfig;
use crate::weighted::TransitionWeights;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simrankpp_graph::{ClickGraph, QueryId};
use simrankpp_util::TopK;

/// Monte-Carlo estimator parameters. Serializable like [`SimrankConfig`] so
/// estimator settings can be persisted alongside engine configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McConfig {
    /// Number of simulated walk pairs.
    pub walks: usize,
    /// Maximum coupled steps before a walk pair is abandoned (contributes 0).
    pub max_steps: usize,
    /// RNG seed (estimates are deterministic given the seed).
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            walks: 10_000,
            max_steps: 24,
            seed: 0x51_4D_52_4B, // "QMRK"
        }
    }
}

/// Estimates plain SimRank `s(q1, q2)` by simulating coupled uniform walks.
pub fn mc_simrank_pair(
    g: &ClickGraph,
    q1: QueryId,
    q2: QueryId,
    config: &SimrankConfig,
    mc: &McConfig,
) -> f64 {
    if q1 == q2 {
        return 1.0;
    }
    let mut rng = SmallRng::seed_from_u64(mc.seed);
    let mut total = 0.0f64;
    for _ in 0..mc.walks {
        total += one_uniform_walk(g, q1, q2, config, mc.max_steps, &mut rng);
    }
    total / mc.walks as f64
}

/// One coupled uniform walk pair; returns the decayed meeting contribution.
fn one_uniform_walk(
    g: &ClickGraph,
    q1: QueryId,
    q2: QueryId,
    config: &SimrankConfig,
    max_steps: usize,
    rng: &mut SmallRng,
) -> f64 {
    // Positions alternate sides; `on_query_side` refers to current side.
    let mut a = q1.0;
    let mut b = q2.0;
    let mut on_query_side = true;
    let mut factor = 1.0f64;
    for _ in 0..max_steps {
        if on_query_side {
            let (na, _) = g.ads_of(QueryId(a));
            let (nb, _) = g.ads_of(QueryId(b));
            if na.is_empty() || nb.is_empty() {
                return 0.0;
            }
            factor *= config.c1;
            a = na[rng.gen_range(0..na.len())].0;
            b = nb[rng.gen_range(0..nb.len())].0;
        } else {
            let (na, _) = g.queries_of(simrankpp_graph::AdId(a));
            let (nb, _) = g.queries_of(simrankpp_graph::AdId(b));
            if na.is_empty() || nb.is_empty() {
                return 0.0;
            }
            factor *= config.c2;
            a = na[rng.gen_range(0..na.len())].0;
            b = nb[rng.gen_range(0..nb.len())].0;
        }
        on_query_side = !on_query_side;
        if a == b {
            return factor;
        }
    }
    0.0
}

/// Sentinel for a dead walker inside a recorded trajectory.
const DEAD: u32 = u32::MAX;

/// Batched-walk top-k: estimates `s(q, ·)` against every *frontier*
/// candidate (queries sharing at least one ad with `q` — the 2-hop
/// neighborhood where rewrite-worthy SimRank mass concentrates) and returns
/// the `k` best into `out` (descending score, ties by ascending id).
///
/// Instead of rerunning [`mc_simrank_pair`] per candidate — which would
/// resimulate the source's walks `|frontier|` times — the source's
/// `mc.walks` trajectories are simulated once and recorded; each candidate
/// then couples its own `r`-th walk against the source's `r`-th recorded
/// trajectory. Per-pair estimates are unbiased (candidate walks are
/// independent, seeded per candidate); only the *correlation between
/// candidates* is shared, which top-k selection tolerates.
pub fn mc_topk_into(
    g: &ClickGraph,
    q: QueryId,
    k: usize,
    config: &SimrankConfig,
    mc: &McConfig,
    out: &mut Vec<(QueryId, f64)>,
) {
    out.clear();
    if k == 0 {
        return;
    }
    // Frontier: 2-hop neighbors, ascending, deduplicated, source excluded.
    let mut frontier: Vec<QueryId> = Vec::new();
    let (ads, _) = g.ads_of(q);
    for &a in ads {
        let (qs, _) = g.queries_of(a);
        frontier.extend(qs.iter().copied().filter(|&w| w != q));
    }
    frontier.sort_unstable();
    frontier.dedup();
    if frontier.is_empty() {
        return;
    }

    // Record the source's trajectories: position after step t (alternating
    // sides, so both coupled walkers are always on the same side) at
    // `traj[r * max_steps + t]`, DEAD once the walker hits a dead end.
    let mut rng = SmallRng::seed_from_u64(mc.seed);
    let mut traj = vec![DEAD; mc.walks * mc.max_steps];
    for r in 0..mc.walks {
        let mut pos = q.0;
        let mut on_query_side = true;
        for t in 0..mc.max_steps {
            let next = if on_query_side {
                let (na, _) = g.ads_of(QueryId(pos));
                if na.is_empty() {
                    break;
                }
                na[rng.gen_range(0..na.len())].0
            } else {
                let (nq, _) = g.queries_of(simrankpp_graph::AdId(pos));
                if nq.is_empty() {
                    break;
                }
                nq[rng.gen_range(0..nq.len())].0
            };
            pos = next;
            traj[r * mc.max_steps + t] = pos;
            on_query_side = !on_query_side;
        }
    }
    // Decay accumulated up to and including step t: C1·C2·C1·…
    let mut decay = Vec::with_capacity(mc.max_steps);
    let mut f = 1.0f64;
    for t in 0..mc.max_steps {
        f *= if t % 2 == 0 { config.c1 } else { config.c2 };
        decay.push(f);
    }

    let mut top = TopK::new(k);
    for &cand in &frontier {
        // Independent per-candidate stream; deterministic given `mc.seed`.
        let mut crng =
            SmallRng::seed_from_u64(mc.seed ^ (cand.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut total = 0.0f64;
        for r in 0..mc.walks {
            let steps = &traj[r * mc.max_steps..(r + 1) * mc.max_steps];
            let mut pos = cand.0;
            let mut on_query_side = true;
            for (t, &src) in steps.iter().enumerate() {
                if src == DEAD {
                    break;
                }
                let next = if on_query_side {
                    let (na, _) = g.ads_of(QueryId(pos));
                    if na.is_empty() {
                        break;
                    }
                    na[crng.gen_range(0..na.len())].0
                } else {
                    let (nq, _) = g.queries_of(simrankpp_graph::AdId(pos));
                    if nq.is_empty() {
                        break;
                    }
                    nq[crng.gen_range(0..nq.len())].0
                };
                pos = next;
                on_query_side = !on_query_side;
                if pos == src {
                    total += decay[t];
                    break;
                }
            }
        }
        let est = total / mc.walks as f64;
        if est > 0.0 {
            top.push(cand.0, est);
        }
    }
    out.extend(
        top.into_sorted_vec()
            .into_iter()
            .map(|(i, s)| (QueryId(i), s)),
    );
}

/// Estimates the raw weighted-walk score of `(q1, q2)` (no evidence factor)
/// by simulating the §8.2 transition probabilities.
pub fn mc_weighted_pair(
    g: &ClickGraph,
    q1: QueryId,
    q2: QueryId,
    config: &SimrankConfig,
    mc: &McConfig,
) -> f64 {
    if q1 == q2 {
        return 1.0;
    }
    let tw = TransitionWeights::compute(g, config.weight_kind);
    let mut rng = SmallRng::seed_from_u64(mc.seed);
    let mut total = 0.0f64;
    for _ in 0..mc.walks {
        total += one_weighted_walk(g, &tw, q1, q2, config, mc.max_steps, &mut rng);
    }
    total / mc.walks as f64
}

fn one_weighted_walk(
    g: &ClickGraph,
    tw: &TransitionWeights,
    q1: QueryId,
    q2: QueryId,
    config: &SimrankConfig,
    max_steps: usize,
    rng: &mut SmallRng,
) -> f64 {
    let mut a = q1.0;
    let mut b = q2.0;
    let mut on_query_side = true;
    let mut factor = 1.0f64;
    for _ in 0..max_steps {
        if on_query_side {
            factor *= config.c1;
            let Some(next_a) = weighted_step_from_query(g, tw, QueryId(a), rng) else {
                return 0.0;
            };
            let Some(next_b) = weighted_step_from_query(g, tw, QueryId(b), rng) else {
                return 0.0;
            };
            a = next_a;
            b = next_b;
        } else {
            factor *= config.c2;
            let Some(next_a) = weighted_step_from_ad(g, tw, simrankpp_graph::AdId(a), rng) else {
                return 0.0;
            };
            let Some(next_b) = weighted_step_from_ad(g, tw, simrankpp_graph::AdId(b), rng) else {
                return 0.0;
            };
            a = next_a;
            b = next_b;
        }
        on_query_side = !on_query_side;
        if a == b {
            return factor;
        }
    }
    0.0
}

/// Samples the next ad from `q` per `W(q,·)`, or `None` when the walker takes
/// the self-transition (dies, per the weighted equations).
fn weighted_step_from_query(
    g: &ClickGraph,
    tw: &TransitionWeights,
    q: QueryId,
    rng: &mut SmallRng,
) -> Option<u32> {
    let (ads, _) = g.ads_of(q);
    let weights = tw.from_query(g, q);
    sample_or_die(ads.iter().map(|a| a.0), weights, rng)
}

fn weighted_step_from_ad(
    g: &ClickGraph,
    tw: &TransitionWeights,
    a: simrankpp_graph::AdId,
    rng: &mut SmallRng,
) -> Option<u32> {
    let (qs, _) = g.queries_of(a);
    let weights = tw.from_ad(g, a);
    sample_or_die(qs.iter().map(|q| q.0), weights, rng)
}

/// Inverse-CDF sample over `weights` (which sum to ≤ 1); the residual mass
/// is the die/self-transition outcome.
fn sample_or_die(
    ids: impl Iterator<Item = u32>,
    weights: &[f64],
    rng: &mut SmallRng,
) -> Option<u32> {
    let u: f64 = rng.gen::<f64>();
    let mut acc = 0.0;
    for (id, &w) in ids.zip(weights) {
        acc += w;
        if u < acc {
            return Some(id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k12, figure4_k22};
    use simrankpp_graph::WeightKind;

    fn cfg() -> SimrankConfig {
        SimrankConfig::default()
            .with_iterations(30)
            .with_weight_kind(WeightKind::Clicks)
    }

    fn mc(walks: usize) -> McConfig {
        McConfig {
            walks,
            max_steps: 60,
            ..McConfig::default()
        }
    }

    #[test]
    fn k12_exact() {
        // Two queries, one ad: surfers always meet at step 1 → C1 exactly.
        let g = figure4_k12();
        let est = mc_simrank_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(2000));
        assert!((est - 0.8).abs() < 1e-12, "got {est}");
    }

    #[test]
    fn k22_close_to_exact() {
        let g = figure4_k22();
        let exact = crate::simrank::simrank(&g, &cfg()).queries.get(0, 1);
        let est = mc_simrank_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(60_000));
        assert!(
            (est - exact).abs() < 0.02,
            "estimate {est} too far from exact {exact}"
        );
    }

    #[test]
    fn figure3_estimates_track_engine() {
        let g = figure3_graph();
        let exact = crate::simrank::simrank(&g, &cfg());
        let q = |n: &str| g.query_by_name(n).unwrap();
        for (a, b) in [("pc", "camera"), ("pc", "tv"), ("camera", "tv")] {
            let e = exact.queries.get(q(a).0, q(b).0);
            let est = mc_simrank_pair(&g, q(a), q(b), &cfg(), &mc(60_000));
            assert!(
                (est - e).abs() < 0.03,
                "pair ({a},{b}): estimate {est}, exact {e}"
            );
        }
    }

    #[test]
    fn disconnected_pair_is_zero() {
        let g = figure3_graph();
        let q = |n: &str| g.query_by_name(n).unwrap();
        let est = mc_simrank_pair(&g, q("flower"), q("pc"), &cfg(), &mc(5000));
        assert_eq!(est, 0.0);
    }

    #[test]
    fn self_pair_is_one() {
        let g = figure3_graph();
        assert_eq!(
            mc_simrank_pair(&g, QueryId(0), QueryId(0), &cfg(), &mc(10)),
            1.0
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = figure3_graph();
        let a = mc_simrank_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(5000));
        let b = mc_simrank_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(5000));
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_mc_tracks_weighted_engine() {
        use crate::evidence::EvidenceKind;
        let g = figure4_k22();
        let exact = crate::weighted::weighted_simrank(&g, &cfg(), EvidenceKind::Geometric);
        let est = mc_weighted_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(60_000));
        let raw = exact.raw_queries.get(0, 1);
        assert!(
            (est - raw).abs() < 0.02,
            "estimate {est} too far from raw weighted {raw}"
        );
    }

    #[test]
    fn mc_config_serde_round_trips() {
        let mc = McConfig {
            walks: 123,
            max_steps: 7,
            seed: 42,
        };
        let json = serde_json::to_string(&mc).unwrap();
        let back: McConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(mc, back);
    }

    #[test]
    fn default_seed_spells_qmrk() {
        // The seed bytes are ASCII "QMRK"; the comment used to claim "SRNK".
        let seed = McConfig::default().seed;
        let bytes = [
            (seed >> 24) as u8,
            (seed >> 16) as u8,
            (seed >> 8) as u8,
            seed as u8,
        ];
        assert_eq!(&bytes, b"QMRK");
    }

    #[test]
    fn topk_tracks_pairwise_estimates() {
        // The batched path must agree with per-pair estimation to MC noise.
        let g = figure3_graph();
        let q = g.query_by_name("camera").unwrap();
        let mcc = mc(20_000);
        let mut got = Vec::new();
        mc_topk_into(&g, q, 5, &cfg(), &mcc, &mut got);
        assert!(!got.is_empty());
        let exact = crate::simrank::simrank(&g, &cfg());
        for &(cand, est) in &got {
            let e = exact.queries.get(q.0, cand.0);
            assert!(
                (est - e).abs() < 0.03,
                "candidate {:?}: batched {est}, exact {e}",
                cand
            );
        }
    }

    #[test]
    fn topk_orders_by_score_and_excludes_source() {
        let g = figure3_graph();
        let q = g.query_by_name("pc").unwrap();
        let mut got = Vec::new();
        mc_topk_into(&g, q, 10, &cfg(), &mc(10_000), &mut got);
        assert!(got.iter().all(|&(w, _)| w != q));
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn topk_of_isolated_query_is_empty() {
        let g = figure3_graph();
        let q = g.query_by_name("flower").unwrap();
        let mut got = Vec::new();
        mc_topk_into(&g, q, 10, &cfg(), &mc(1000), &mut got);
        // "flower" shares its only ad with nobody.
        assert!(got.is_empty());
    }

    #[test]
    fn topk_deterministic_given_seed() {
        let g = figure3_graph();
        let q = g.query_by_name("camera").unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        mc_topk_into(&g, q, 5, &cfg(), &mc(5000), &mut a);
        mc_topk_into(&g, q, 5, &cfg(), &mc(5000), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn more_walks_reduce_error() {
        let g = figure4_k22();
        let exact = crate::simrank::simrank(&g, &cfg()).queries.get(0, 1);
        let coarse = (mc_simrank_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(200)) - exact).abs();
        let fine =
            (mc_simrank_pair(&g, QueryId(0), QueryId(1), &cfg(), &mc(100_000)) - exact).abs();
        // Not guaranteed pointwise, but with these seeds/sizes it holds and
        // guards against gross estimator bias.
        assert!(fine <= coarse + 0.01, "fine {fine} vs coarse {coarse}");
    }
}
