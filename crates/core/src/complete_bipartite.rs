//! Closed-form SimRank iterates on complete bipartite graphs `K_{m,2}`
//! (§6, Theorems 6.1–6.2 and 7.1; Appendices A and B).
//!
//! In `K_{m,2}` — `m` nodes on one side all connected to the pair `{A, B}`
//! on the other — symmetry collapses the Jacobi iteration to two scalars:
//!
//! ```text
//! p_k = (C_pair / m) · (1 + (m−1)·q_{k−1})   // score of the tracked pair (A,B)
//! q_k = (C_other / 2) · (1 + p_{k−1})        // score of any m-side pair (m ≥ 2)
//! ```
//!
//! where `C_pair` is the decay of the tracked pair's side and `C_other` the
//! other side's. These recurrences are exact and reproduce the paper's
//! Table 3 (and Table 4 after evidence multiplication) as well as the
//! Theorem A.1 series for `K_{2,2}`.

use crate::evidence::EvidenceKind;

/// Per-iteration scores `p_1..p_k` of the tracked 2-side pair `(A, B)` in
/// `K_{m,2}`.
///
/// * `m` — size of the other side (≥ 1).
/// * `c_pair` — decay factor of the tracked pair's SimRank equation.
/// * `c_other` — decay factor of the other side's equation.
pub fn km2_pair_iterates(m: usize, c_pair: f64, c_other: f64, iterations: usize) -> Vec<f64> {
    assert!(m >= 1, "K_{{m,2}} needs m >= 1");
    let mut out = Vec::with_capacity(iterations);
    let mut p = 0.0f64; // tracked pair score s(A,B)
    let mut q = 0.0f64; // other-side pair score (unused when m == 1)
    for _ in 0..iterations {
        let next_p = (c_pair / m as f64) * (1.0 + (m as f64 - 1.0) * q);
        let next_q = if m >= 2 {
            (c_other / 2.0) * (1.0 + p)
        } else {
            0.0
        };
        p = next_p;
        q = next_q;
        out.push(p);
    }
    out
}

/// Evidence-based iterates: `evidence(A,B) · p_k` where the tracked pair's
/// common-neighbor count is `m` (Theorem 7.1 / Table 4).
pub fn km2_evidence_pair_iterates(
    m: usize,
    c_pair: f64,
    c_other: f64,
    iterations: usize,
    kind: EvidenceKind,
) -> Vec<f64> {
    let ev = kind.value(m);
    km2_pair_iterates(m, c_pair, c_other, iterations)
        .into_iter()
        .map(|p| ev * p)
        .collect()
}

/// Theorem A.1(i): the explicit series for `K_{2,2}`,
/// `sim^k(A,B) = (C_pair/2) Σ_{i=1..k} 2^{1−i} C_other^{⌊i/2⌋} C_pair^{⌊(i−1)/2⌋}`.
///
/// Note: the paper prints the last exponent as `⌈(i−1)/2⌉`, but its own
/// expanded iterations (Appendix A.1, e.g. the `C1/2` term of iteration 2)
/// and Table 3 require the floor; we implement the floor and the test suite
/// pins this against Table 3 and the exact recurrence.
pub fn k22_series(c_pair: f64, c_other: f64, iterations: usize) -> f64 {
    let mut sum = 0.0;
    for i in 1..=iterations {
        let term = 0.5f64.powi(i as i32 - 1)
            * c_other.powi((i / 2) as i32)
            * c_pair.powi(((i - 1) / 2) as i32);
        sum += term;
    }
    c_pair / 2.0 * sum
}

/// Fixed point of the `K_{m,2}` recurrence (`k → ∞`), by solving the 2×2
/// linear system `p = (C_p/m)(1 + (m−1)q)`, `q = (C_o/2)(1 + p)`.
pub fn km2_pair_limit(m: usize, c_pair: f64, c_other: f64) -> f64 {
    assert!(m >= 1);
    if m == 1 {
        return c_pair;
    }
    let mf = m as f64;
    // Substituting q into p:  p = C_p/m · (1 + (m−1)·(C_o/2)·(1+p))
    //                           = C_p/m + a + a·p,  a = (C_p/m)(m−1)(C_o/2)
    // so p = (C_p/m + a) / (1 − a); a < 1 whenever C_p, C_o ≤ 1 and m ≥ 2.
    let a = (c_pair / mf) * (mf - 1.0) * (c_other / 2.0);
    (c_pair / mf + a) / (1.0 - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimrankConfig;
    use crate::simrank::simrank;
    use simrankpp_graph::fixtures::complete_bipartite;
    use simrankpp_graph::EdgeData;

    const C: f64 = 0.8;

    #[test]
    fn table3_values() {
        // Table 3: K2,2 camera/digital-camera column.
        let got = km2_pair_iterates(2, C, C, 7);
        let want = [0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        // K1,2 pc/camera column: constant 0.8.
        let got = km2_pair_iterates(1, C, C, 7);
        for g in got {
            assert!((g - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn table4_values() {
        let got = km2_evidence_pair_iterates(2, C, C, 7, EvidenceKind::Geometric);
        let want = [0.3, 0.42, 0.468, 0.4872, 0.49488, 0.497952, 0.4991808];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        let got = km2_evidence_pair_iterates(1, C, C, 7, EvidenceKind::Geometric);
        for g in got {
            assert!((g - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn series_matches_recurrence_for_k22() {
        for k in 1..=12 {
            let series = k22_series(C, C, k);
            let rec = *km2_pair_iterates(2, C, C, k).last().unwrap();
            assert!(
                (series - rec).abs() < 1e-12,
                "k={k}: series {series} vs recurrence {rec}"
            );
        }
        // And with asymmetric decays.
        for k in 1..=12 {
            let series = k22_series(0.7, 0.9, k);
            let rec = *km2_pair_iterates(2, 0.7, 0.9, k).last().unwrap();
            assert!((series - rec).abs() < 1e-12);
        }
    }

    #[test]
    fn recurrence_matches_engine() {
        // Closed form vs the sparse engine on actual K_{m,2} graphs.
        for m in 1..=5usize {
            let g = complete_bipartite(m, 2, EdgeData::from_clicks(1));
            for k in 1..=6 {
                let cfg = SimrankConfig::default().with_iterations(k);
                let engine = simrank(&g, &cfg).ads.get(0, 1);
                let closed = *km2_pair_iterates(m, C, C, k).last().unwrap();
                assert!(
                    (engine - closed).abs() < 1e-12,
                    "m={m}, k={k}: engine {engine} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn theorem_6_1_k12_dominates_k22() {
        // sim^k(A,B) in K1,2 ≥ sim^k(C,D) in K2,2 for all k.
        for k in 1..=20 {
            let k12 = *km2_pair_iterates(1, C, C, k).last().unwrap();
            let k22 = *km2_pair_iterates(2, C, C, k).last().unwrap();
            assert!(k12 >= k22, "k={k}: {k12} < {k22}");
        }
    }

    #[test]
    fn theorem_6_2_m_less_than_n_dominates() {
        // K_{m,2} score > K_{n,2} score for m < n, every k.
        for (m, n) in [(1usize, 2usize), (2, 3), (2, 5), (3, 7)] {
            for k in 1..=15 {
                let pm = *km2_pair_iterates(m, C, C, k).last().unwrap();
                let pn = *km2_pair_iterates(n, C, C, k).last().unwrap();
                assert!(pm > pn, "m={m},n={n},k={k}: {pm} <= {pn}");
            }
        }
    }

    #[test]
    fn theorem_6_2_limits_equal_iff_c_is_one() {
        // With C1=C2=1 the limits agree; with C<1 they differ.
        let lim_m = km2_pair_limit(1, 1.0, 1.0);
        let lim_n = km2_pair_limit(2, 1.0, 1.0);
        assert!((lim_m - lim_n).abs() < 1e-12);
        let lim_m = km2_pair_limit(1, C, C);
        let lim_n = km2_pair_limit(2, C, C);
        assert!(lim_m > lim_n + 1e-6);
    }

    #[test]
    fn theorem_7_1_evidence_reverses_order() {
        // Theorem 7.1 / B.2 as literally proved (m=1 vs n=2): with
        // C1, C2 > 1/2 the evidence-based K_{2,2} pair beats the K_{1,2}
        // pair for every k > 1.
        for k in 2..=20 {
            let p1 = *km2_evidence_pair_iterates(1, C, C, k, EvidenceKind::Geometric)
                .last()
                .unwrap();
            let p2 = *km2_evidence_pair_iterates(2, C, C, k, EvidenceKind::Geometric)
                .last()
                .unwrap();
            assert!(p1 < p2, "k={k}: {p1} >= {p2}");
        }
    }

    #[test]
    fn theorem_b3_generalization_has_small_k_counterexample() {
        // Theorem B.3 asserts the same ordering for all m < n and k > 1 "by
        // similar arguments". Our exact recurrences find counterexamples at
        // small k with C1=C2=0.8: the K_{2,2} pair (evidence 3/4, walk 0.56)
        // scores 0.42 at k=2, above the K_{4,2} pair (evidence 15/16, walk
        // 0.44) at 0.4125; K_{1,2} (0.4) likewise beats K_{8,2} (0.379).
        // The ordering does hold in the limit and for large k.
        for (m, n) in [(2usize, 4usize), (1, 8)] {
            let pm = *km2_evidence_pair_iterates(m, C, C, 2, EvidenceKind::Geometric)
                .last()
                .unwrap();
            let pn = *km2_evidence_pair_iterates(n, C, C, 2, EvidenceKind::Geometric)
                .last()
                .unwrap();
            assert!(
                pm > pn,
                "expected the documented counterexample m={m},n={n}: {pm} vs {pn}"
            );
        }
        // Eventual ordering (and the limit ordering) still hold.
        for (m, n) in [(2usize, 4usize), (3, 5), (2, 3), (1, 8)] {
            let pm = *km2_evidence_pair_iterates(m, C, C, 50, EvidenceKind::Geometric)
                .last()
                .unwrap();
            let pn = *km2_evidence_pair_iterates(n, C, C, 50, EvidenceKind::Geometric)
                .last()
                .unwrap();
            assert!(pm < pn, "m={m},n={n} at k=50: {pm} >= {pn}");
            let lm = EvidenceKind::Geometric.value(m) * km2_pair_limit(m, C, C);
            let ln = EvidenceKind::Geometric.value(n) * km2_pair_limit(n, C, C);
            assert!(lm < ln, "limits: m={m} {lm} >= n={n} {ln}");
        }
    }

    #[test]
    fn limit_matches_long_iteration() {
        for m in [1usize, 2, 3, 8] {
            let lim = km2_pair_limit(m, C, C);
            let long = *km2_pair_iterates(m, C, C, 500).last().unwrap();
            assert!((lim - long).abs() < 1e-10, "m={m}: {lim} vs {long}");
        }
    }

    #[test]
    fn theorem_a1_limit_bound() {
        // Theorem A.1(ii): lim sim^k(A,B) ≤ C2 on K2,2.
        for c in [0.2, 0.5, 0.8, 1.0] {
            assert!(km2_pair_limit(2, c, c) <= c + 1e-12);
        }
    }
}
