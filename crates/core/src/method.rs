//! A uniform interface over the paper's four query-rewriting methods.
//!
//! §9 compares Pearson (baseline), SimRank, evidence-based SimRank, and
//! weighted SimRank. [`Method`] computes any of them over a click graph and
//! answers the two questions the evaluation pipeline asks: the score of a
//! specific pair, and the ranked rewrite candidates of a query.
//!
//! Ranking is by `(final score desc, raw walk score desc, id asc)`. The raw
//! walk score only matters when final scores tie — in particular when the
//! evidence factor zeroes both candidates (no common ad), where the paper's
//! Figure 12 behaviour shows the underlying SimRank ordering taking over
//! (evidence-based predicts exactly as plain SimRank there).

use crate::config::{KernelKind, SimrankConfig};
use crate::evidence::{evidence_simrank, EvidenceKind};
use crate::naive::naive_scores;
use crate::pearson::pearson_scores;
use crate::scores::ScoreMatrix;
use crate::simrank::simrank;
use crate::weighted::weighted_simrank;
use serde::{Deserialize, Serialize};
use simrankpp_graph::{ClickGraph, QueryId};

/// The similarity schemes compared in the paper's evaluation (§9) plus the
/// §3 naive counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// §3: common-ad count.
    Naive,
    /// §9.1: Pearson correlation over common ads.
    Pearson,
    /// §4: plain bipartite SimRank.
    Simrank,
    /// §7: evidence-based SimRank.
    EvidenceSimrank,
    /// §8: weighted SimRank (evidence + weight-consistent walk).
    WeightedSimrank,
}

impl MethodKind {
    /// The four methods of the paper's evaluation, in the order its figures
    /// list them.
    pub const EVALUATED: [MethodKind; 4] = [
        MethodKind::Pearson,
        MethodKind::Simrank,
        MethodKind::EvidenceSimrank,
        MethodKind::WeightedSimrank,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Naive => "naive common-ads",
            MethodKind::Pearson => "Pearson",
            MethodKind::Simrank => "Simrank",
            MethodKind::EvidenceSimrank => "evidence-based Simrank",
            MethodKind::WeightedSimrank => "weighted Simrank",
        }
    }
}

/// A computed similarity method over one click graph: final (ranking) scores
/// plus optional raw tie-break scores, and the engine kernel that produced
/// them (provenance — the serving layer refuses to mix kernels across an
/// incremental refresh, since different kernels differ at rounding level).
#[derive(Debug, Clone)]
pub struct Method {
    kind: MethodKind,
    scores: ScoreMatrix,
    raw: Option<ScoreMatrix>,
    kernel: KernelKind,
}

impl Method {
    /// Computes `kind` over `g`. `config` controls decay factors, iteration
    /// count, pruning, the edge-weight kind (weighted SimRank and Pearson),
    /// and threading.
    pub fn compute(kind: MethodKind, g: &ClickGraph, config: &SimrankConfig) -> Method {
        Self::compute_with_evidence(kind, g, config, EvidenceKind::Geometric)
    }

    /// As [`Method::compute`] with an explicit evidence formula (the
    /// `ablation_evidence_fn` bench sweeps this).
    pub fn compute_with_evidence(
        kind: MethodKind,
        g: &ClickGraph,
        config: &SimrankConfig,
        evidence: EvidenceKind,
    ) -> Method {
        let kernel = config.kernel;
        match kind {
            MethodKind::Naive => Method {
                kind,
                scores: naive_scores(g),
                raw: None,
                kernel,
            },
            MethodKind::Pearson => Method {
                kind,
                scores: pearson_scores(g, config.weight_kind),
                raw: None,
                kernel,
            },
            MethodKind::Simrank => Method {
                kind,
                scores: simrank(g, config).queries,
                raw: None,
                kernel,
            },
            MethodKind::EvidenceSimrank => {
                let r = evidence_simrank(g, config, evidence);
                Method {
                    kind,
                    scores: r.queries,
                    raw: Some(r.raw.queries),
                    kernel,
                }
            }
            MethodKind::WeightedSimrank => {
                let r = weighted_simrank(g, config, evidence);
                Method {
                    kind,
                    scores: r.queries,
                    raw: Some(r.raw_queries),
                    kernel,
                }
            }
        }
    }

    /// Wraps precomputed matrices (used by the evaluation harness when the
    /// same underlying computation serves several read-outs). The kernel
    /// provenance defaults to [`KernelKind::default`].
    pub fn from_scores(kind: MethodKind, scores: ScoreMatrix, raw: Option<ScoreMatrix>) -> Method {
        Method {
            kind,
            scores,
            raw,
            kernel: KernelKind::default(),
        }
    }

    /// Which method this is.
    pub fn kind(&self) -> MethodKind {
        self.kind
    }

    /// Which engine kernel computed the scores (see
    /// [`crate::config::KernelKind`]).
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The final (ranking) score matrix.
    pub fn scores(&self) -> &ScoreMatrix {
        &self.scores
    }

    /// The raw tie-break matrix, when the method has one.
    pub fn raw_scores(&self) -> Option<&ScoreMatrix> {
        self.raw.as_ref()
    }

    /// Final similarity of a query pair.
    pub fn score(&self, q1: QueryId, q2: QueryId) -> f64 {
        self.scores.get(q1.0, q2.0)
    }

    /// `(final, raw)` similarity of a pair; raw falls back to final.
    pub fn score_with_tiebreak(&self, q1: QueryId, q2: QueryId) -> (f64, f64) {
        let f = self.scores.get(q1.0, q2.0);
        let r = self.raw.as_ref().map(|m| m.get(q1.0, q2.0)).unwrap_or(f);
        (f, r)
    }

    /// Ranks candidate rewrites for `q`: all queries with positive final or
    /// raw score, ordered by `(final desc, raw desc, id asc)`, truncated to
    /// `limit`.
    pub fn ranked_candidates(&self, q: QueryId, limit: usize) -> Vec<(QueryId, f64)> {
        let mut candidates: Vec<(u32, f64, f64)> = Vec::new();
        for (other, score) in self.scores.partners(q.0) {
            let raw = self
                .raw
                .as_ref()
                .map(|m| m.get(q.0, other))
                .unwrap_or(score);
            candidates.push((other, score, raw));
        }
        // Pairs visible only through the raw matrix (evidence zeroed them).
        if let Some(raw) = &self.raw {
            for (other, r) in raw.partners(q.0) {
                if self.scores.get(q.0, other) == 0.0 {
                    candidates.push((other, 0.0, r));
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.0.cmp(&b.0))
        });
        candidates
            .into_iter()
            .take(limit)
            .map(|(id, score, _raw)| (QueryId(id), score))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::figure3_graph;

    fn cfg() -> SimrankConfig {
        SimrankConfig::default()
            .with_iterations(7)
            .with_weight_kind(simrankpp_graph::WeightKind::Clicks)
    }

    #[test]
    fn all_methods_compute_on_figure3() {
        let g = figure3_graph();
        for kind in MethodKind::EVALUATED {
            let m = Method::compute(kind, &g, &cfg());
            assert_eq!(m.kind(), kind);
            // Symmetry of the uniform interface.
            let a = g.query_by_name("camera").unwrap();
            let b = g.query_by_name("digital camera").unwrap();
            assert_eq!(m.score(a, b), m.score(b, a));
        }
    }

    #[test]
    fn simrank_covers_tv_pc_but_pearson_does_not() {
        // The paper's core coverage argument (§10.1).
        let g = figure3_graph();
        let pc = g.query_by_name("pc").unwrap();
        let tv = g.query_by_name("tv").unwrap();
        let sr = Method::compute(MethodKind::Simrank, &g, &cfg());
        let pe = Method::compute(MethodKind::Pearson, &g, &cfg());
        assert!(sr.score(pc, tv) > 0.0);
        assert_eq!(pe.score(pc, tv), 0.0);
    }

    #[test]
    fn evidence_ties_break_by_raw_simrank() {
        let g = figure3_graph();
        let m = Method::compute(MethodKind::EvidenceSimrank, &g, &cfg());
        let pc = g.query_by_name("pc").unwrap();
        let tv = g.query_by_name("tv").unwrap();
        // Evidence zeroes pc–tv but the candidate list still surfaces it
        // through the raw score.
        let (final_score, raw) = m.score_with_tiebreak(pc, tv);
        assert_eq!(final_score, 0.0);
        assert!(raw > 0.0);
        let candidates = m.ranked_candidates(pc, 10);
        assert!(
            candidates.iter().any(|&(q, _)| q == tv),
            "tv must appear via raw tie-break"
        );
    }

    #[test]
    fn ranked_candidates_ordering() {
        let g = figure3_graph();
        let m = Method::compute(MethodKind::EvidenceSimrank, &g, &cfg());
        let camera = g.query_by_name("camera").unwrap();
        let ranked = m.ranked_candidates(camera, 10);
        // digital camera (2 common ads) must outrank pc/tv (1 common ad each).
        let dc = g.query_by_name("digital camera").unwrap();
        assert_eq!(ranked[0].0, dc);
        // Scores descending.
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-15);
        }
    }

    #[test]
    fn limit_truncates() {
        let g = figure3_graph();
        let m = Method::compute(MethodKind::Simrank, &g, &cfg());
        let camera = g.query_by_name("camera").unwrap();
        assert!(m.ranked_candidates(camera, 1).len() <= 1);
    }

    #[test]
    fn flower_has_no_candidates() {
        let g = figure3_graph();
        let flower = g.query_by_name("flower").unwrap();
        for kind in MethodKind::EVALUATED {
            let m = Method::compute(kind, &g, &cfg());
            assert!(
                m.ranked_candidates(flower, 10).is_empty(),
                "{} gave flower a rewrite",
                kind.name()
            );
        }
    }
}
