//! The Pearson-correlation baseline (§9.1).
//!
//! ```text
//!                    Σ_{α∈E(q)∩E(q')} (w(q,α) − w̄_q)(w(q',α) − w̄_q')
//! sim_pearson(q,q') = ───────────────────────────────────────────────
//!                     √Σ_α (w(q,α) − w̄_q)² · √Σ_α (w(q',α) − w̄_q')²
//! ```
//!
//! where `w̄_q` is the mean weight over *all* of `q`'s edges and the sums run
//! over the **common** ads. Zero when `E(q) ∩ E(q') = ∅` or either variance
//! term vanishes. (The paper prints the denominator with both squared terms
//! under one square root and a dropped parenthesis; we use the standard
//! Pearson form, which is the only reading that keeps scores in [−1, 1].)

use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use simrankpp_graph::{AdId, ClickGraph, QueryId, WeightKind};
use simrankpp_util::FxHashSet;

/// Pearson correlation between two queries over their common ads.
pub fn pearson_similarity(g: &ClickGraph, q1: QueryId, q2: QueryId, kind: WeightKind) -> f64 {
    let n1 = g.query_degree(q1);
    let n2 = g.query_degree(q2);
    if n1 == 0 || n2 == 0 {
        return 0.0;
    }
    let mean1 = g.query_weight_sum(q1, kind) / n1 as f64;
    let mean2 = g.query_weight_sum(q2, kind) / n2 as f64;

    let mut num = 0.0;
    let mut den1 = 0.0;
    let mut den2 = 0.0;
    let mut any = false;
    for (_, e1, e2) in g.common_ads_iter(q1, q2) {
        any = true;
        let d1 = e1.weight(kind) - mean1;
        let d2 = e2.weight(kind) - mean2;
        num += d1 * d2;
        den1 += d1 * d1;
        den2 += d2 * d2;
    }
    if !any || den1 <= 0.0 || den2 <= 0.0 {
        return 0.0;
    }
    num / (den1.sqrt() * den2.sqrt())
}

/// All-pairs Pearson scores for pairs sharing at least one ad. Only positive
/// correlations are retained (negative correlation is not a rewrite signal).
pub fn pearson_scores(g: &ClickGraph, kind: WeightKind) -> ScoreMatrix {
    let mut b = ScoreMatrixBuilder::new(g.n_queries());
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for ai in 0..g.n_ads() {
        let (qs, _) = g.queries_of(AdId(ai as u32));
        for (x, &qa) in qs.iter().enumerate() {
            for &qb in &qs[x + 1..] {
                let key = simrankpp_util::PairKey::new(qa.0, qb.0).raw();
                if seen.insert(key) {
                    let v = pearson_similarity(g, qa, qb, kind);
                    if v > 0.0 {
                        b.set(qa.0, qb.0, v);
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::{ClickGraphBuilder, EdgeData};

    fn graph_with_weights(rows: &[(&str, &str, u64)]) -> ClickGraph {
        let mut b = ClickGraphBuilder::new();
        for &(q, a, w) in rows {
            b.add_named(q, a, EdgeData::from_clicks(w));
        }
        b.build()
    }

    #[test]
    fn perfectly_correlated_pair() {
        // Two queries with proportional weight profiles over 3 common ads
        // (and equal means) → correlation 1.
        let g = graph_with_weights(&[
            ("q1", "a1", 1),
            ("q1", "a2", 2),
            ("q1", "a3", 3),
            ("q2", "a1", 2),
            ("q2", "a2", 4),
            ("q2", "a3", 6),
        ]);
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        let v = pearson_similarity(&g, q1, q2, WeightKind::Clicks);
        assert!((v - 1.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn anti_correlated_pair() {
        let g = graph_with_weights(&[
            ("q1", "a1", 1),
            ("q1", "a2", 3),
            ("q2", "a1", 3),
            ("q2", "a2", 1),
        ]);
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        let v = pearson_similarity(&g, q1, q2, WeightKind::Clicks);
        assert!((v + 1.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn no_common_ads_is_zero() {
        let g = graph_with_weights(&[("q1", "a1", 1), ("q2", "a2", 1)]);
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        assert_eq!(pearson_similarity(&g, q1, q2, WeightKind::Clicks), 0.0);
    }

    #[test]
    fn constant_profile_is_zero() {
        // A query with all-equal weights has zero deviation on common ads
        // when its mean equals those weights → undefined Pearson → 0.
        let g = graph_with_weights(&[
            ("q1", "a1", 2),
            ("q1", "a2", 2),
            ("q2", "a1", 1),
            ("q2", "a2", 3),
        ]);
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        assert_eq!(pearson_similarity(&g, q1, q2, WeightKind::Clicks), 0.0);
    }

    #[test]
    fn bounded_in_unit_interval() {
        // Random-ish weights: correlation must stay in [-1, 1].
        let g = graph_with_weights(&[
            ("q1", "a1", 5),
            ("q1", "a2", 1),
            ("q1", "a3", 9),
            ("q2", "a1", 2),
            ("q2", "a2", 8),
            ("q2", "a3", 4),
            ("q3", "a2", 7),
            ("q3", "a3", 2),
        ]);
        for a in g.queries() {
            for b in g.queries() {
                let v = pearson_similarity(&g, a, b, WeightKind::Clicks);
                assert!((-1.0..=1.0).contains(&v), "sim({a},{b}) = {v}");
            }
        }
    }

    #[test]
    fn matrix_keeps_only_positive() {
        let g = graph_with_weights(&[
            ("q1", "a1", 1),
            ("q1", "a2", 3),
            ("q2", "a1", 3),
            ("q2", "a2", 1),
            ("q3", "a1", 1),
            ("q3", "a2", 3),
        ]);
        let m = pearson_scores(&g, WeightKind::Clicks);
        let q = |n: &str| g.query_by_name(n).unwrap().0;
        assert_eq!(m.get(q("q1"), q("q2")), 0.0); // anti-correlated, dropped
        assert!((m.get(q("q1"), q("q3")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let g = graph_with_weights(&[
            ("q1", "a1", 5),
            ("q1", "a2", 2),
            ("q2", "a1", 3),
            ("q2", "a2", 8),
        ]);
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        assert_eq!(
            pearson_similarity(&g, q1, q2, WeightKind::Clicks),
            pearson_similarity(&g, q2, q1, WeightKind::Clicks)
        );
    }
}
