//! Weighted SimRank (§8).
//!
//! §8.2 replaces the uniform random walk with transition probabilities that
//! respect the click weights:
//!
//! ```text
//! W(q,i) = spread(i) · normalized_weight(q,i)
//!        = e^(−variance(i)) · w(q,i) / Σ_{j∈E(q)} w(q,j)
//!
//! s_w(q,q') = evidence(q,q') · C1 · Σ_{i∈E(q)} Σ_{j∈E(q')} W(q,i)·W(q',j)·s_w(i,j)
//! s_w(α,α') = evidence(α,α') · C2 · Σ_{i∈E(α)} Σ_{j∈E(α')} W(α,i)·W(α',j)·s_w(i,j)
//! ```
//!
//! `variance(i)` is the population variance of the weights on edges incident
//! to node `i`, so a node whose incident weights are all equal has
//! `spread = 1`, and high-variance nodes transmit less similarity — this is
//! what enforces Definition 8.1's consistency (Theorem 8.1). Note there is no
//! `1/(N·N')` prefactor: the `W` factors already normalize the walk, and the
//! leftover probability mass `1 − Σ_i p(α,i)` is the self-transition.
//!
//! The walk recursion itself runs on the unified kernel in [`crate::engine`]
//! via [`crate::engine::WeightedTransition`] — this module only computes the
//! `W` factor tables ([`TransitionWeights`]) and applies the evidence factor
//! at read-out; the raw walk scores are kept for tie-breaking (see
//! `evidence.rs` for why the paper's Figure 12 requires this).
//!
//! A practical note the paper's §9.2 choice of edge weight quietly depends
//! on: `spread = e^(−variance)` is *scale sensitive*. With raw click counts a
//! popular ad's incident weights can have variance in the thousands and
//! `spread` underflows to 0; with the expected click rate (a rate in `[0, 1]`)
//! variances stay small. This is reproduced by the `ablation_weights` bench.

use crate::config::SimrankConfig;
use crate::engine::{self, WeightedTransition};
use crate::evidence::{evidence_multiply, EvidenceKind};
use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use simrankpp_graph::{AdId, ClickGraph, QueryId, WeightKind};
use simrankpp_util::population_variance;

/// Precomputed transition factors `W(·,·)` for both directions.
#[derive(Debug, Clone)]
pub struct TransitionWeights {
    /// `W(q, a)` aligned with the query→ad CSR edge order.
    pub w_query_to_ad: Vec<f64>,
    /// `W(a, q)` aligned with the ad→query CSR edge order.
    pub w_ad_to_query: Vec<f64>,
    /// `spread(a) = e^(−variance(a))` per ad.
    pub spread_ad: Vec<f64>,
    /// `spread(q) = e^(−variance(q))` per query.
    pub spread_query: Vec<f64>,
}

/// Whether the walk uses the §8.2 `spread = e^(−variance)` factor.
///
/// `Off` is an ablation knob (`ablation_spread` bench): it keeps only the
/// normalized weights, i.e. a plain weighted random walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpreadMode {
    /// The paper's `e^(−variance)` (default).
    #[default]
    Exponential,
    /// No spread factor (spread ≡ 1).
    Off,
}

impl TransitionWeights {
    /// Computes all transition factors for `g` using edge weight `kind`.
    pub fn compute(g: &ClickGraph, kind: WeightKind) -> Self {
        Self::compute_with_spread(g, kind, SpreadMode::Exponential)
    }

    /// As [`TransitionWeights::compute`] with an explicit spread mode.
    pub fn compute_with_spread(g: &ClickGraph, kind: WeightKind, mode: SpreadMode) -> Self {
        let spread = |weights: &[f64]| match mode {
            SpreadMode::Exponential => (-population_variance(weights)).exp(),
            SpreadMode::Off => 1.0,
        };
        let spread_ad: Vec<f64> = g
            .ads()
            .map(|a| {
                let (_, edges) = g.queries_of(a);
                let weights: Vec<f64> = edges.iter().map(|e| e.weight(kind)).collect();
                spread(&weights)
            })
            .collect();
        let spread_query: Vec<f64> = g
            .queries()
            .map(|q| {
                let (_, edges) = g.ads_of(q);
                let weights: Vec<f64> = edges.iter().map(|e| e.weight(kind)).collect();
                spread(&weights)
            })
            .collect();

        // W(q, a) = spread(a) · w(q,a)/Σ_j w(q,j), laid out in query-CSR order.
        let mut w_query_to_ad = Vec::with_capacity(g.n_edges());
        for q in g.queries() {
            let (ads, edges) = g.ads_of(q);
            let total: f64 = edges.iter().map(|e| e.weight(kind)).sum();
            for (&a, e) in ads.iter().zip(edges) {
                let nw = if total > 0.0 {
                    e.weight(kind) / total
                } else {
                    0.0
                };
                w_query_to_ad.push(spread_ad[a.index()] * nw);
            }
        }
        // W(a, q) = spread(q) · w(a,q)/Σ_j w(a,j), in ad-CSR order.
        let mut w_ad_to_query = Vec::with_capacity(g.n_edges());
        for a in g.ads() {
            let (qs, edges) = g.queries_of(a);
            let total: f64 = edges.iter().map(|e| e.weight(kind)).sum();
            for (&q, e) in qs.iter().zip(edges) {
                let nw = if total > 0.0 {
                    e.weight(kind) / total
                } else {
                    0.0
                };
                w_ad_to_query.push(spread_query[q.index()] * nw);
            }
        }
        TransitionWeights {
            w_query_to_ad,
            w_ad_to_query,
            spread_ad,
            spread_query,
        }
    }

    /// The `W(q, ·)` slice for query `q` (aligned with `g.ads_of(q)`).
    pub fn from_query(&self, g: &ClickGraph, q: QueryId) -> &[f64] {
        let lo = g.query_csr_offset(q);
        let hi = g.query_csr_offset(QueryId(q.0 + 1));
        &self.w_query_to_ad[lo..hi]
    }

    /// The `W(a, ·)` slice for ad `a` (aligned with `g.queries_of(a)`).
    pub fn from_ad(&self, g: &ClickGraph, a: AdId) -> &[f64] {
        let lo = g.ad_csr_offset(a);
        let hi = g.ad_csr_offset(AdId(a.0 + 1));
        &self.w_ad_to_query[lo..hi]
    }
}

/// Output of weighted SimRank.
#[derive(Debug, Clone)]
pub struct WeightedSimrankResult {
    /// Evidence-multiplied query-side scores (§8.2 equations).
    pub queries: ScoreMatrix,
    /// Evidence-multiplied ad-side scores.
    pub ads: ScoreMatrix,
    /// Raw weighted-walk scores (no evidence factor): used for tie-breaking
    /// and the desirability experiment.
    pub raw_queries: ScoreMatrix,
    /// Raw ad-side walk scores.
    pub raw_ads: ScoreMatrix,
    /// Configuration used.
    pub config: SimrankConfig,
    /// Evidence formula used.
    pub evidence: EvidenceKind,
    /// Stored (query-pairs, ad-pairs) counts per executed iteration — the
    /// same diagnostics plain SimRank reports, from the shared engine.
    pub pair_counts: Vec<(usize, usize)>,
    /// Largest per-pair score change at each executed iteration.
    pub max_deltas: Vec<f64>,
    /// Iterations actually executed.
    pub iterations_run: usize,
    /// Whether the `config.tolerance` early exit fired.
    pub converged: bool,
}

/// Runs weighted SimRank: evidence × weighted-walk scores after
/// `config.iterations` Jacobi iterations.
pub fn weighted_simrank(
    g: &ClickGraph,
    config: &SimrankConfig,
    evidence: EvidenceKind,
) -> WeightedSimrankResult {
    weighted_simrank_with_spread(g, config, evidence, SpreadMode::Exponential)
}

/// As [`weighted_simrank`] with an explicit spread mode (ablation knob).
pub fn weighted_simrank_with_spread(
    g: &ClickGraph,
    config: &SimrankConfig,
    evidence: EvidenceKind,
    spread: SpreadMode,
) -> WeightedSimrankResult {
    let transition = WeightedTransition {
        kind: config.weight_kind,
        spread,
    };
    let run = engine::run_with_strategy(g, config, &transition);
    let (queries, ads) = evidence_multiply(g, &run.queries, &run.ads, evidence);
    WeightedSimrankResult {
        queries,
        ads,
        raw_queries: run.queries,
        raw_ads: run.ads,
        config: *config,
        evidence,
        pair_counts: run.pair_counts,
        max_deltas: run.max_deltas,
        iterations_run: run.iterations_run,
        converged: run.converged,
    }
}

/// Dense O(n²·d²) reference for the weighted walk (no evidence factor):
/// exact Jacobi iteration of the §8.2 equations over full matrices. Used to
/// cross-validate the sparse engine; intended for small graphs only.
pub fn weighted_simrank_dense(
    g: &ClickGraph,
    config: &SimrankConfig,
    spread: SpreadMode,
) -> (ScoreMatrix, ScoreMatrix) {
    config.validate().expect("invalid SimRank configuration");
    let tw = TransitionWeights::compute_with_spread(g, config.weight_kind, spread);
    let nq = g.n_queries();
    let na = g.n_ads();
    let mut q_mat = crate::simrank::identity(nq);
    let mut a_mat = crate::simrank::identity(na);

    for _ in 0..config.iterations {
        let mut next_q = crate::simrank::identity(nq);
        for q1 in 0..nq {
            let (ads1, _) = g.ads_of(QueryId(q1 as u32));
            let w1 = tw.from_query(g, QueryId(q1 as u32));
            for q2 in (q1 + 1)..nq {
                let (ads2, _) = g.ads_of(QueryId(q2 as u32));
                let w2 = tw.from_query(g, QueryId(q2 as u32));
                let mut sum = 0.0;
                for (x, &i) in ads1.iter().enumerate() {
                    for (y, &j) in ads2.iter().enumerate() {
                        sum += w1[x] * w2[y] * a_mat[i.index() * na + j.index()];
                    }
                }
                let v = config.c1 * sum;
                next_q[q1 * nq + q2] = v;
                next_q[q2 * nq + q1] = v;
            }
        }
        let mut next_a = crate::simrank::identity(na);
        for a1 in 0..na {
            let (qs1, _) = g.queries_of(AdId(a1 as u32));
            let w1 = tw.from_ad(g, AdId(a1 as u32));
            for a2 in (a1 + 1)..na {
                let (qs2, _) = g.queries_of(AdId(a2 as u32));
                let w2 = tw.from_ad(g, AdId(a2 as u32));
                let mut sum = 0.0;
                for (x, &i) in qs1.iter().enumerate() {
                    for (y, &j) in qs2.iter().enumerate() {
                        sum += w1[x] * w2[y] * q_mat[i.index() * nq + j.index()];
                    }
                }
                let v = config.c2 * sum;
                next_a[a1 * na + a2] = v;
                next_a[a2 * na + a1] = v;
            }
        }
        q_mat = next_q;
        a_mat = next_a;
    }

    let mut qb = ScoreMatrixBuilder::new(nq);
    for q1 in 0..nq {
        for q2 in (q1 + 1)..nq {
            let v = q_mat[q1 * nq + q2];
            if v > 0.0 {
                qb.set(q1 as u32, q2 as u32, v);
            }
        }
    }
    let mut ab = ScoreMatrixBuilder::new(na);
    for a1 in 0..na {
        for a2 in (a1 + 1)..na {
            let v = a_mat[a1 * na + a2];
            if v > 0.0 {
                ab.set(a1 as u32, a2 as u32, v);
            }
        }
    }
    (qb.build(), ab.build())
}

/// One-iteration weighted-walk score of two queries sharing a single ad with
/// incident weights `weights` (each query's only edge). Used by the
/// Theorem 8.1 / Figure 5 demonstrations: `C1 · spread(ad)²`.
pub fn star_pair_score(weights: (f64, f64), c1: f64) -> f64 {
    let (w1, w2) = weights;
    let var = population_variance(&[w1, w2]);
    let spread = (-var).exp();
    // Single-edge queries have normalized weight 1, so W = spread.
    c1 * spread * spread
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{figure3_graph, figure4_k22, figure5_graphs, figure6_graphs};
    use simrankpp_graph::{ClickGraphBuilder, EdgeData};

    fn cfg(k: usize) -> SimrankConfig {
        SimrankConfig::default()
            .with_iterations(k)
            .with_weight_kind(WeightKind::Clicks)
    }

    #[test]
    fn transition_weights_uniform_graph() {
        // All weights equal → variance 0 → spread 1 → W = 1/deg.
        let g = figure4_k22();
        let tw = TransitionWeights::compute(&g, WeightKind::Clicks);
        for v in &tw.spread_ad {
            assert!((v - 1.0).abs() < 1e-12);
        }
        for v in &tw.w_query_to_ad {
            assert!((v - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn transition_probabilities_sum_at_most_one() {
        let (left, right) = figure5_graphs();
        for g in [&left, &right] {
            let tw = TransitionWeights::compute(g, WeightKind::Clicks);
            for q in g.queries() {
                let total: f64 = tw.from_query(g, q).iter().sum();
                assert!(total <= 1.0 + 1e-12, "outgoing mass {total} > 1");
            }
            for a in g.ads() {
                let total: f64 = tw.from_ad(g, a).iter().sum();
                assert!(total <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn figure5_balanced_pair_wins() {
        // Figure 5: equal-click pair (flower, orchids) must beat the skewed
        // pair (flower, teleflora) — Def 8.1 rule (ii).
        let (left, right) = figure5_graphs();
        let sl = weighted_simrank(&left, &cfg(5), EvidenceKind::Geometric);
        let sr = weighted_simrank(&right, &cfg(5), EvidenceKind::Geometric);
        assert!(
            sl.queries.get(0, 1) > sr.queries.get(0, 1),
            "left {} must exceed right {}",
            sl.queries.get(0, 1),
            sr.queries.get(0, 1)
        );
    }

    #[test]
    fn figure6_same_spread_does_not_invert() {
        // Figure 6: both graphs have zero variance at the ad, so the §8.2
        // equations — which are scale-invariant through the normalized
        // weights — tie the two pairs. (The intuitive "more clicks wins"
        // ordering of §8.1 needs differing spreads or an embedding; see
        // rule_i_in_embedded_graph.) The important property: the heavier
        // pair never scores *lower*.
        let (left, right) = figure6_graphs();
        let sl = weighted_simrank(&left, &cfg(5), EvidenceKind::Geometric);
        let sr = weighted_simrank(&right, &cfg(5), EvidenceKind::Geometric);
        assert!(sl.queries.get(0, 1) >= sr.queries.get(0, 1) - 1e-12);
    }

    #[test]
    fn rule_i_in_embedded_graph() {
        // Definition 8.1 rule (i): equal variance at the two ads, but the
        // first pair reaches its ad with heavier clicks. Each query also has
        // a weight-1 edge to a shared background ad, so the heavier absolute
        // weight translates into a larger normalized share:
        //   h1, h2 →(10)→ v1;  l1, l2 →(2)→ v2;  everyone →(1)→ bg.
        // variance(v1) = variance(v2) = 0, w(h1,v1)=10 > w(l1,v2)=2
        // ⇒ sim(h1,h2) > sim(l1,l2) must hold at every iteration count.
        let mut b = ClickGraphBuilder::new();
        for (name, ad, w) in [
            ("h1", "v1", 10u64),
            ("h2", "v1", 10),
            ("l1", "v2", 2),
            ("l2", "v2", 2),
        ] {
            b.add_named(name, ad, EdgeData::from_clicks(w));
            b.add_named(name, "bg", EdgeData::from_clicks(1));
        }
        let g = b.build();
        let q = |n: &str| g.query_by_name(n).unwrap().0;
        for k in 1..=8 {
            let r = weighted_simrank(&g, &cfg(k), EvidenceKind::Geometric);
            let heavy = r.queries.get(q("h1"), q("h2"));
            let light = r.queries.get(q("l1"), q("l2"));
            assert!(
                heavy > light,
                "k={k}: heavy pair {heavy} must exceed light pair {light}"
            );
        }
    }

    #[test]
    fn evidence_applied_at_readout() {
        let g = figure4_k22();
        let r = weighted_simrank(&g, &cfg(3), EvidenceKind::Geometric);
        // Uniform K2,2: weighted walk == plain SimRank; evidence = 3/4.
        let plain = crate::simrank::simrank(&g, &cfg(3));
        assert!((r.raw_queries.get(0, 1) - plain.queries.get(0, 1)).abs() < 1e-12);
        assert!((r.queries.get(0, 1) - 0.75 * plain.queries.get(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights_reduce_to_simrank() {
        // On an equal-weight graph W(q,i) = 1/N(q), so raw weighted scores
        // coincide with plain SimRank.
        let g = figure3_graph();
        let plain = crate::simrank::simrank(&g, &cfg(6));
        let weighted = weighted_simrank(&g, &cfg(6), EvidenceKind::Geometric);
        assert!(
            plain.queries.max_abs_diff(&weighted.raw_queries) < 1e-12,
            "diff = {}",
            plain.queries.max_abs_diff(&weighted.raw_queries)
        );
        assert!(plain.ads.max_abs_diff(&weighted.raw_ads) < 1e-12);
    }

    #[test]
    fn scores_bounded() {
        let (left, _) = figure5_graphs();
        let r = weighted_simrank(&left, &cfg(10), EvidenceKind::Geometric);
        for (_, _, v) in r.queries.iter() {
            assert!(v > 0.0 && v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn sparse_matches_weighted_dense() {
        let (left, _) = figure5_graphs();
        for spread in [SpreadMode::Exponential, SpreadMode::Off] {
            let sparse =
                weighted_simrank_with_spread(&left, &cfg(5), EvidenceKind::Geometric, spread);
            let (dense_q, dense_a) = weighted_simrank_dense(&left, &cfg(5), spread);
            assert!(
                sparse.raw_queries.max_abs_diff(&dense_q) < 1e-12,
                "spread {spread:?}: drift {}",
                sparse.raw_queries.max_abs_diff(&dense_q)
            );
            assert!(sparse.raw_ads.max_abs_diff(&dense_a) < 1e-12);
        }
    }

    #[test]
    fn diagnostics_reported_for_weighted_variant() {
        let g = figure3_graph();
        let r = weighted_simrank(&g, &cfg(5), EvidenceKind::Geometric);
        assert_eq!(r.pair_counts.len(), 5);
        assert_eq!(r.max_deltas.len(), 5);
        assert_eq!(r.iterations_run, 5);
        assert!(r.pair_counts[4].0 >= r.pair_counts[0].0);
        assert!(r.max_deltas.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn star_pair_score_monotone_in_balance() {
        let balanced = star_pair_score((50.0, 50.0), 0.8);
        let skewed = star_pair_score((40.0, 60.0), 0.8);
        let very_skewed = star_pair_score((1.0, 99.0), 0.8);
        assert!(balanced > skewed && skewed > very_skewed);
        assert!((balanced - 0.8).abs() < 1e-12); // variance 0 → C1
    }

    #[test]
    fn ecr_weights_avoid_spread_underflow() {
        // With raw clicks, a popular ad's weight variance can be huge and
        // spread underflows; with ECR (a rate) it stays usable. Reproduce
        // the contrast on a two-query star with clicks {200, 2}.
        let mut b = ClickGraphBuilder::new();
        b.add_named("popular", "ad", EdgeData::new(1000, 200, 0.2));
        b.add_named("niche", "ad", EdgeData::new(10, 2, 0.2));
        let g = b.build();
        let clicks = weighted_simrank(
            &g,
            &cfg(3).with_weight_kind(WeightKind::Clicks),
            EvidenceKind::Geometric,
        );
        let ecr = weighted_simrank(
            &g,
            &cfg(3).with_weight_kind(WeightKind::ExpectedClickRate),
            EvidenceKind::Geometric,
        );
        assert_eq!(clicks.queries.get(0, 1), 0.0, "spread underflow expected");
        assert!(ecr.queries.get(0, 1) > 0.3, "ECR weights must survive");
    }
}
