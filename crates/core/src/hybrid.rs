//! Hybrid text + click-graph similarity (§11 future work).
//!
//! The conclusions suggest "methods for combining our similarity scores with
//! semantic text-based similarities". This extension blends a click-graph
//! score matrix with the Jaccard similarity of the queries' stemmed token
//! sets:
//!
//! ```text
//! hybrid(q,q') = λ · click(q,q') + (1 − λ) · jaccard(stems(q), stems(q'))
//! ```
//!
//! Only pairs already present in the click matrix are re-scored (the blend
//! re-ranks graph-discovered candidates; it does not invent candidates from
//! text alone — that would be a retrieval problem, not a ranking one).

use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use simrankpp_graph::ClickGraph;
use simrankpp_text::{normalize_query, stem, tokenize};
use simrankpp_util::FxHashSet;

/// Jaccard similarity of two queries' stemmed token sets.
pub fn text_similarity(a: &str, b: &str) -> f64 {
    let set = |s: &str| -> FxHashSet<String> {
        tokenize(&normalize_query(s))
            .into_iter()
            .map(stem)
            .collect()
    };
    let sa = set(a);
    let sb = set(b);
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Blends click scores with text similarity: `λ·click + (1−λ)·text`.
///
/// # Panics
/// Panics if `lambda ∉ [0,1]` or the graph has no query names.
pub fn hybrid_scores(g: &ClickGraph, click: &ScoreMatrix, lambda: f64) -> ScoreMatrix {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
    assert!(
        g.query_interner().is_some(),
        "hybrid scoring needs query display names"
    );
    let mut b = ScoreMatrixBuilder::new(click.n_nodes());
    for (qa, qb, v) in click.iter() {
        let na = g.query_name(simrankpp_graph::QueryId(qa)).unwrap_or("");
        let nb = g.query_name(simrankpp_graph::QueryId(qb)).unwrap_or("");
        let blended = lambda * v + (1.0 - lambda) * text_similarity(na, nb);
        if blended > 0.0 {
            b.set(qa, qb, blended);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimrankConfig;
    use crate::simrank::simrank;
    use simrankpp_graph::fixtures::figure3_graph;

    #[test]
    fn text_similarity_basics() {
        assert_eq!(text_similarity("camera", "camera"), 1.0);
        assert_eq!(text_similarity("camera", "cameras"), 1.0); // stem collapse
        assert_eq!(text_similarity("pc", "tv"), 0.0);
        let v = text_similarity("digital camera", "camera");
        assert!((v - 0.5).abs() < 1e-12); // {digit, camera} ∩ {camera}
    }

    #[test]
    fn empty_query_is_zero() {
        assert_eq!(text_similarity("", "camera"), 0.0);
        assert_eq!(text_similarity("", ""), 0.0);
    }

    #[test]
    fn lambda_one_reduces_to_click() {
        let g = figure3_graph();
        let click = simrank(&g, &SimrankConfig::default()).queries;
        let hybrid = hybrid_scores(&g, &click, 1.0);
        assert!(click.max_abs_diff(&hybrid) < 1e-12);
    }

    #[test]
    fn text_component_boosts_lexically_related_pairs() {
        let g = figure3_graph();
        let click = simrank(&g, &SimrankConfig::default()).queries;
        let q = |n: &str| g.query_by_name(n).unwrap().0;
        // Plain SimRank ties camera–digital-camera with camera–tv (§6's
        // complaint); the text blend breaks the tie the right way.
        let h = hybrid_scores(&g, &click, 0.5);
        assert!(
            h.get(q("camera"), q("digital camera")) > h.get(q("camera"), q("tv")),
            "text blend must favor the lexically-overlapping pair"
        );
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_panics() {
        let g = figure3_graph();
        let click = simrank(&g, &SimrankConfig::default()).queries;
        hybrid_scores(&g, &click, 1.5);
    }
}
