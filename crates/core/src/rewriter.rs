//! The sponsored-search front-end (Figure 2): query → ranked rewrites.
//!
//! §9.3's pipeline, reproduced stage by stage:
//!
//! 1. score candidates with the chosen method and keep the **top 100**;
//! 2. **stem-dedup**: drop candidates whose stemmed token multiset duplicates
//!    the original query or an earlier candidate;
//! 3. **bid-term filter**: drop candidates not in the list of queries that
//!    saw at least one bid during the collection window;
//! 4. keep at most **5** rewrites. The number that survive is the method's
//!    *depth* for that query.

use crate::method::Method;
use simrankpp_graph::{ClickGraph, QueryId};
use simrankpp_text::StemDeduper;
use simrankpp_util::FxHashSet;

/// Pipeline parameters (§9.3 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriterConfig {
    /// Candidates recorded per query before filtering (paper: 100).
    pub max_candidates: usize,
    /// Rewrites kept after filtering (paper: 5).
    pub max_rewrites: usize,
    /// Apply the stemming duplicate filter (needs query names).
    pub stem_dedup: bool,
}

impl Default for RewriterConfig {
    fn default() -> Self {
        RewriterConfig {
            max_candidates: 100,
            max_rewrites: 5,
            stem_dedup: true,
        }
    }
}

/// One produced rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct Rewrite {
    /// The rewritten-to query.
    pub query: QueryId,
    /// The method's (final) similarity score.
    pub score: f64,
    /// Display name, when the graph has names.
    pub name: Option<String>,
}

/// The front-end: a computed method plus the filtering pipeline.
#[derive(Debug)]
pub struct Rewriter<'g> {
    graph: &'g ClickGraph,
    method: Method,
    config: RewriterConfig,
}

impl<'g> Rewriter<'g> {
    /// Wraps a computed method over `graph`.
    pub fn new(graph: &'g ClickGraph, method: Method, config: RewriterConfig) -> Self {
        Rewriter {
            graph,
            method,
            config,
        }
    }

    /// The wrapped method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The click graph this rewriter serves.
    pub fn graph(&self) -> &ClickGraph {
        self.graph
    }

    /// The pipeline parameters.
    pub fn config(&self) -> &RewriterConfig {
        &self.config
    }

    /// Produces rewrites for `q`. `bid_terms`, when given, is the §9.3 bid
    /// filter: the set of queries that saw at least one bid.
    pub fn rewrites(&self, q: QueryId, bid_terms: Option<&FxHashSet<QueryId>>) -> Vec<Rewrite> {
        let mut ids = Vec::with_capacity(self.config.max_rewrites);
        self.rewrite_ids_into(q, bid_terms, &mut ids);
        ids.into_iter()
            .map(|(query, score)| Rewrite {
                query,
                score,
                name: self.graph.query_name(query).map(str::to_owned),
            })
            .collect()
    }

    /// The pipeline core: writes `q`'s surviving `(target, score)` pairs into
    /// `out` (cleared first), without materializing display names.
    /// [`Rewriter::rewrites`] and the serving-index build share this single
    /// implementation; reusing `out` across calls keeps the batched offline
    /// build allocation-lean.
    pub fn rewrite_ids_into(
        &self,
        q: QueryId,
        bid_terms: Option<&FxHashSet<QueryId>>,
        out: &mut Vec<(QueryId, f64)>,
    ) {
        out.clear();
        let candidates = self.method.ranked_candidates(q, self.config.max_candidates);

        // An unnamed source query has no signature to seed, but named
        // candidates must still be deduplicated against each other —
        // skipping the deduper entirely let duplicates reach the top-5.
        let mut deduper = if self.config.stem_dedup {
            Some(match self.graph.query_name(q) {
                Some(name) => StemDeduper::seeded_with(name),
                None => StemDeduper::new(),
            })
        } else {
            None
        };

        for (candidate, score) in candidates {
            if candidate == q {
                continue;
            }
            if let Some(d) = deduper.as_mut() {
                if let Some(name) = self.graph.query_name(candidate) {
                    if !d.admit(name) {
                        continue;
                    }
                }
            }
            if let Some(bids) = bid_terms {
                if !bids.contains(&candidate) {
                    continue;
                }
            }
            out.push((candidate, score));
            if out.len() >= self.config.max_rewrites {
                break;
            }
        }
    }

    /// Runs the full §9.3 pipeline for **every** query of the graph — the
    /// offline half of the precompute-then-serve split — in `threads`
    /// chunked scoped-thread workers (`0` = all cores). `out[q]` holds the
    /// rewrites of `QueryId(q)`; chunk order makes the result deterministic
    /// for any thread count.
    pub fn rewrites_for_all(
        &self,
        bid_terms: Option<&FxHashSet<QueryId>>,
        threads: usize,
    ) -> Vec<Vec<Rewrite>> {
        let chunks = crate::engine::parallel::run_chunked(self.graph.n_queries(), threads, |r| {
            r.map(|q| self.rewrites(QueryId(q as u32), bid_terms))
                .collect::<Vec<_>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// The §9.4 *depth* of the method for `q`: how many rewrites survive
    /// the pipeline (≤ `max_rewrites`).
    pub fn depth(&self, q: QueryId, bid_terms: Option<&FxHashSet<QueryId>>) -> usize {
        self.rewrites(q, bid_terms).len()
    }

    /// §9.4 *coverage* over a query sample: the fraction with ≥ 1 rewrite.
    pub fn coverage(&self, queries: &[QueryId], bid_terms: Option<&FxHashSet<QueryId>>) -> f64 {
        if queries.is_empty() {
            return 0.0;
        }
        let covered = queries
            .iter()
            .filter(|&&q| !self.rewrites(q, bid_terms).is_empty())
            .count();
        covered as f64 / queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimrankConfig;
    use crate::method::{Method, MethodKind};
    use simrankpp_graph::fixtures::figure3_graph;

    fn rewriter(g: &ClickGraph, kind: MethodKind) -> Rewriter<'_> {
        let cfg = SimrankConfig::default().with_weight_kind(simrankpp_graph::WeightKind::Clicks);
        Rewriter::new(g, Method::compute(kind, g, &cfg), RewriterConfig::default())
    }

    #[test]
    fn camera_rewrites_ranked() {
        let g = figure3_graph();
        let r = rewriter(&g, MethodKind::WeightedSimrank);
        let camera = g.query_by_name("camera").unwrap();
        let rewrites = r.rewrites(camera, None);
        assert!(!rewrites.is_empty());
        assert_eq!(rewrites[0].name.as_deref(), Some("digital camera"));
    }

    #[test]
    fn self_is_never_a_rewrite() {
        let g = figure3_graph();
        let r = rewriter(&g, MethodKind::Simrank);
        for q in g.queries() {
            assert!(r.rewrites(q, None).iter().all(|rw| rw.query != q));
        }
    }

    #[test]
    fn bid_filter_drops_unbidden() {
        let g = figure3_graph();
        let r = rewriter(&g, MethodKind::Simrank);
        let camera = g.query_by_name("camera").unwrap();
        let dc = g.query_by_name("digital camera").unwrap();
        let mut bids = FxHashSet::default();
        bids.insert(dc);
        let rewrites = r.rewrites(camera, Some(&bids));
        assert_eq!(rewrites.len(), 1);
        assert_eq!(rewrites[0].query, dc);
    }

    #[test]
    fn empty_bid_list_gives_zero_depth() {
        let g = figure3_graph();
        let r = rewriter(&g, MethodKind::Simrank);
        let camera = g.query_by_name("camera").unwrap();
        let bids = FxHashSet::default();
        assert_eq!(r.depth(camera, Some(&bids)), 0);
    }

    #[test]
    fn coverage_on_figure3() {
        let g = figure3_graph();
        let r = rewriter(&g, MethodKind::Simrank);
        let queries: Vec<QueryId> = g.queries().collect();
        // flower has no rewrites; the other four do → 4/5.
        let cov = r.coverage(&queries, None);
        assert!((cov - 0.8).abs() < 1e-12, "coverage {cov}");
    }

    #[test]
    fn pearson_coverage_lower_than_simrank() {
        // The Figure 8 shape on the toy graph: Pearson ≤ SimRank coverage.
        let g = figure3_graph();
        let queries: Vec<QueryId> = g.queries().collect();
        let sr = rewriter(&g, MethodKind::Simrank).coverage(&queries, None);
        let pe = rewriter(&g, MethodKind::Pearson).coverage(&queries, None);
        assert!(pe <= sr);
    }

    #[test]
    fn max_rewrites_respected() {
        let g = figure3_graph();
        let cfg = RewriterConfig {
            max_rewrites: 1,
            ..RewriterConfig::default()
        };
        let scfg = SimrankConfig::default();
        let r = Rewriter::new(&g, Method::compute(MethodKind::Simrank, &g, &scfg), cfg);
        let camera = g.query_by_name("camera").unwrap();
        assert!(r.rewrites(camera, None).len() <= 1);
    }

    /// Three named queries (two of them stem-duplicates), one unnamed query,
    /// all clicking the same ad. `intern_query` assigns ids 0..3 to the named
    /// queries; `QueryId(3)` stays outside the interner so it has no name.
    fn mixed_named_graph() -> ClickGraph {
        use simrankpp_graph::{ClickGraphBuilder, EdgeData};
        let mut b = ClickGraphBuilder::new();
        let shoe = b.intern_query("shoe");
        let shoes = b.intern_query("shoes");
        let boots = b.intern_query("boots");
        let store = b.intern_ad("shoestore");
        b.add_edge(shoe, store, EdgeData::from_clicks(4));
        b.add_edge(shoes, store, EdgeData::from_clicks(2));
        b.add_edge(boots, store, EdgeData::from_clicks(3));
        b.add_edge(QueryId(3), store, EdgeData::from_clicks(5));
        b.build()
    }

    #[test]
    fn unnamed_source_still_dedups_named_candidates() {
        // Regression: an unnamed source query used to disable stem-dedup
        // entirely, so "shoe" and "shoes" could both reach the served top-5.
        let g = mixed_named_graph();
        let unnamed = QueryId(3);
        assert_eq!(g.query_name(unnamed), None);
        let r = rewriter(&g, MethodKind::Simrank);
        let rewrites = r.rewrites(unnamed, None);
        let names: Vec<_> = rewrites.iter().filter_map(|rw| rw.name.clone()).collect();
        assert!(
            !(names.iter().any(|n| n == "shoe") && names.iter().any(|n| n == "shoes")),
            "shoe/shoes both served to an unnamed query: {names:?}"
        );
        // The non-duplicate candidates still come through.
        assert!(names.iter().any(|n| n == "boots"), "{names:?}");
    }

    #[test]
    fn unnamed_candidates_survive_dedup() {
        // A candidate without a name has no signature; it must pass through
        // the deduper rather than be dropped (or crash).
        let g = mixed_named_graph();
        let boots = g.query_by_name("boots").unwrap();
        let r = rewriter(&g, MethodKind::Simrank);
        let rewrites = r.rewrites(boots, None);
        assert!(
            rewrites.iter().any(|rw| rw.query == QueryId(3)),
            "unnamed candidate missing: {rewrites:?}"
        );
    }

    #[test]
    fn rewrites_for_all_matches_per_query() {
        let g = figure3_graph();
        let r = rewriter(&g, MethodKind::WeightedSimrank);
        for threads in [1, 4] {
            let all = r.rewrites_for_all(None, threads);
            assert_eq!(all.len(), g.n_queries());
            for q in g.queries() {
                assert_eq!(all[q.index()], r.rewrites(q, None), "threads {threads}");
            }
        }
    }

    #[test]
    fn stem_dedup_removes_inflections() {
        use simrankpp_graph::{ClickGraphBuilder, EdgeData};
        // "shoe" and "shoes" both similar to "boots" via one ad — only the
        // first (higher-ranked) survives dedup.
        let mut b = ClickGraphBuilder::new();
        b.add_named("boots", "shoestore", EdgeData::from_clicks(4));
        b.add_named("shoe", "shoestore", EdgeData::from_clicks(4));
        b.add_named("shoes", "shoestore", EdgeData::from_clicks(2));
        let g = b.build();
        let r = rewriter(&g, MethodKind::Simrank);
        let boots = g.query_by_name("boots").unwrap();
        let rewrites = r.rewrites(boots, None);
        let names: Vec<_> = rewrites.iter().filter_map(|r| r.name.clone()).collect();
        assert_eq!(names.len(), 1, "dedup must collapse shoe/shoes: {names:?}");
    }
}
