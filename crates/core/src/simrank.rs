//! Bipartite SimRank (§4, Eq. 4.1/4.2).
//!
//! For `q ≠ q'`:
//! ```text
//! s(q,q') = C1 / (N(q)·N(q')) · Σ_{i∈E(q)} Σ_{j∈E(q')} s(i,j)
//! s(α,α') = C2 / (N(α)·N(α')) · Σ_{i∈E(α)} Σ_{j∈E(α')} s(i,j)
//! ```
//! with `s(x,x) = 1`. Iteration is simultaneous (Jacobi) from `s⁰ = I`,
//! matching the per-iteration numbers in the paper's Tables 3–4 and the
//! Appendix A derivations.
//!
//! Two engines:
//!
//! * [`simrank`] — sparse: a thin front-end over the unified propagation
//!   kernel in [`crate::engine`] with the uniform `1/N` transition
//!   ([`crate::engine::UniformTransition`]). Work is proportional to
//!   `Σ_{(i,j)∈support} N(i)·N(j)` rather than `|Q|²`; exact when
//!   `config.prune_threshold == 0`, and pruning plus the
//!   `config.tolerance` early exit make 10⁵-node graphs feasible.
//! * [`simrank_dense`] — a straightforward O(n²·d²) reference used to
//!   cross-validate the sparse engine and for the paper's small examples.
//!
//! The sparse path parallelizes across scoped threads when
//! `config.threads != 1`.

use crate::config::SimrankConfig;
use crate::engine::{self, UniformTransition};
use crate::scores::{ScoreMatrix, ScoreMatrixBuilder};
use simrankpp_graph::{AdId, ClickGraph, QueryId};

/// Output of a SimRank computation.
#[derive(Debug, Clone)]
pub struct SimrankResult {
    /// Query-side similarity scores `s(q, q')`.
    pub queries: ScoreMatrix,
    /// Ad-side similarity scores `s(α, α')`.
    pub ads: ScoreMatrix,
    /// The configuration used.
    pub config: SimrankConfig,
    /// Stored (query-pairs, ad-pairs) counts after each executed iteration —
    /// diagnostics for the pruning ablation.
    pub pair_counts: Vec<(usize, usize)>,
    /// Largest per-pair score change (both sides) at each executed iteration
    /// — the convergence trajectory.
    pub max_deltas: Vec<f64>,
    /// Iterations actually executed (less than `config.iterations` when the
    /// `config.tolerance` early exit fires).
    pub iterations_run: usize,
    /// Whether iteration stopped because the max delta reached
    /// `config.tolerance`.
    pub converged: bool,
}

impl SimrankResult {
    pub(crate) fn from_engine(run: engine::EngineRun, config: &SimrankConfig) -> Self {
        SimrankResult {
            queries: run.queries,
            ads: run.ads,
            config: *config,
            pair_counts: run.pair_counts,
            max_deltas: run.max_deltas,
            iterations_run: run.iterations_run,
            converged: run.converged,
        }
    }
}

/// Runs sparse bipartite SimRank through the unified engine, honoring
/// `config.sharding` (per-component runs are exact; see `engine::sharded`).
pub fn simrank(g: &ClickGraph, config: &SimrankConfig) -> SimrankResult {
    SimrankResult::from_engine(
        engine::run_with_strategy(g, config, &UniformTransition),
        config,
    )
}

/// Dense reference implementation (O((|Q|² + |A|²)·d²) per iteration).
///
/// Exact Jacobi iteration over full matrices; intended for graphs up to a
/// few thousand nodes (tests, paper tables, cross-validation of the sparse
/// engine). Records no diagnostics.
pub fn simrank_dense(g: &ClickGraph, config: &SimrankConfig) -> SimrankResult {
    config.validate().expect("invalid SimRank configuration");
    let nq = g.n_queries();
    let na = g.n_ads();
    let mut q_mat = identity(nq);
    let mut a_mat = identity(na);

    for _ in 0..config.iterations {
        let mut next_q = identity(nq);
        for q1 in 0..nq {
            let (ads1, _) = g.ads_of(QueryId(q1 as u32));
            for q2 in (q1 + 1)..nq {
                let (ads2, _) = g.ads_of(QueryId(q2 as u32));
                if ads1.is_empty() || ads2.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &i in ads1 {
                    for &j in ads2 {
                        sum += a_mat[i.index() * na + j.index()];
                    }
                }
                let v = config.c1 * sum / (ads1.len() as f64 * ads2.len() as f64);
                next_q[q1 * nq + q2] = v;
                next_q[q2 * nq + q1] = v;
            }
        }
        let mut next_a = identity(na);
        for a1 in 0..na {
            let (qs1, _) = g.queries_of(AdId(a1 as u32));
            for a2 in (a1 + 1)..na {
                let (qs2, _) = g.queries_of(AdId(a2 as u32));
                if qs1.is_empty() || qs2.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &i in qs1 {
                    for &j in qs2 {
                        sum += q_mat[i.index() * nq + j.index()];
                    }
                }
                let v = config.c2 * sum / (qs1.len() as f64 * qs2.len() as f64);
                next_a[a1 * na + a2] = v;
                next_a[a2 * na + a1] = v;
            }
        }
        q_mat = next_q;
        a_mat = next_a;
    }

    let mut qb = ScoreMatrixBuilder::new(nq);
    for q1 in 0..nq {
        for q2 in (q1 + 1)..nq {
            let v = q_mat[q1 * nq + q2];
            if v > 0.0 {
                qb.set(q1 as u32, q2 as u32, v);
            }
        }
    }
    let mut ab = ScoreMatrixBuilder::new(na);
    for a1 in 0..na {
        for a2 in (a1 + 1)..na {
            let v = a_mat[a1 * na + a2];
            if v > 0.0 {
                ab.set(a1 as u32, a2 as u32, v);
            }
        }
    }
    SimrankResult {
        queries: qb.build(),
        ads: ab.build(),
        config: *config,
        pair_counts: Vec::new(),
        max_deltas: Vec::new(),
        iterations_run: config.iterations,
        converged: false,
    }
}

/// Flat n x n identity matrix (shared with the weighted dense oracle).
pub(crate) fn identity(n: usize) -> Vec<f64> {
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        m[i * n + i] = 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::fixtures::{complete_bipartite, figure3_graph, figure4_k12, figure4_k22};
    use simrankpp_graph::EdgeData;

    fn cfg(k: usize) -> SimrankConfig {
        SimrankConfig::default().with_iterations(k)
    }

    #[test]
    fn table3_k22_iterations() {
        // Table 3, column sim("camera", "digital camera") on K2,2, C=0.8.
        let g = figure4_k22();
        let expected = [0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744];
        for (k, &want) in expected.iter().enumerate() {
            let r = simrank(&g, &cfg(k + 1));
            let got = r.queries.get(0, 1);
            assert!(
                (got - want).abs() < 1e-9,
                "iteration {}: got {got}, want {want}",
                k + 1
            );
        }
    }

    #[test]
    fn table3_k12_constant() {
        // Table 3, column sim("pc", "camera") = 0.8 at every iteration.
        let g = figure4_k12();
        for k in 1..=7 {
            let r = simrank(&g, &cfg(k));
            assert!((r.queries.get(0, 1) - 0.8).abs() < 1e-12, "iteration {k}");
        }
    }

    #[test]
    fn table2_figure3_converged() {
        // Table 2: converged scores on the Figure 3 graph with C1=C2=0.8.
        let g = figure3_graph();
        let r = simrank(&g, &cfg(100));
        let q = |name: &str| g.query_by_name(name).unwrap().0;

        let cases = [
            ("pc", "camera", 0.619),
            ("pc", "digital camera", 0.619),
            ("pc", "tv", 0.437),
            ("pc", "flower", 0.0),
            ("camera", "digital camera", 0.619),
            ("camera", "tv", 0.619),
            ("camera", "flower", 0.0),
            ("digital camera", "tv", 0.619),
            ("digital camera", "flower", 0.0),
            ("tv", "flower", 0.0),
        ];
        for (a, b, want) in cases {
            let got = r.queries.get(q(a), q(b));
            assert!(
                (got - want).abs() < 5e-4,
                "sim({a}, {b}) = {got}, paper says {want}"
            );
        }
    }

    #[test]
    fn scores_are_symmetric_and_bounded() {
        let g = figure3_graph();
        let r = simrank(&g, &cfg(10));
        for (a, b, v) in r.queries.iter() {
            assert!(v > 0.0 && v <= 1.0, "score out of range: {v}");
            assert_eq!(r.queries.get(a, b), r.queries.get(b, a));
        }
        for (a, b, v) in r.ads.iter() {
            assert!(v > 0.0 && v <= 1.0);
            assert_eq!(r.ads.get(a, b), r.ads.get(b, a));
        }
    }

    #[test]
    fn scores_monotone_in_iterations() {
        // For basic SimRank from s⁰=I, iterates are non-decreasing per pair.
        let g = figure3_graph();
        let mut prev = simrank(&g, &cfg(1));
        for k in 2..=8 {
            let cur = simrank(&g, &cfg(k));
            for (a, b, v) in cur.queries.iter() {
                assert!(
                    v + 1e-12 >= prev.queries.get(a, b),
                    "pair ({a},{b}) decreased at iteration {k}"
                );
            }
            prev = cur;
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let g = figure3_graph();
        let s = simrank(&g, &cfg(6));
        let d = simrank_dense(&g, &cfg(6));
        assert!(s.queries.max_abs_diff(&d.queries) < 1e-12);
        assert!(s.ads.max_abs_diff(&d.ads) < 1e-12);
    }

    #[test]
    fn sparse_matches_dense_on_random_graph() {
        use simrankpp_graph::ClickGraphBuilder;
        let mut b = ClickGraphBuilder::new();
        let mut x: u64 = 99;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let q = ((x >> 33) % 30) as u32;
            let a = ((x >> 13) % 25) as u32;
            b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1));
        }
        let g = b.build();
        let s = simrank(&g, &cfg(5));
        let d = simrank_dense(&g, &cfg(5));
        assert!(
            s.queries.max_abs_diff(&d.queries) < 1e-10,
            "query-side mismatch {}",
            s.queries.max_abs_diff(&d.queries)
        );
        assert!(s.ads.max_abs_diff(&d.ads) < 1e-10);
    }

    #[test]
    fn parallel_matches_serial() {
        use simrankpp_graph::ClickGraphBuilder;
        let mut b = ClickGraphBuilder::new();
        let mut x: u64 = 7;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let q = ((x >> 33) % 400) as u32;
            let a = ((x >> 13) % 300) as u32;
            b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1));
        }
        let g = b.build();
        let serial = simrank(&g, &cfg(4));
        let parallel = simrank(&g, &cfg(4).with_threads(4));
        assert!(
            serial.queries.max_abs_diff(&parallel.queries) < 1e-9,
            "parallel drifted by {}",
            serial.queries.max_abs_diff(&parallel.queries)
        );
    }

    #[test]
    fn pruning_only_loses_small_scores() {
        let g = figure3_graph();
        let exact = simrank(&g, &cfg(8));
        let pruned = simrank(&g, &cfg(8).with_prune_threshold(0.05));
        for (a, b, v) in exact.queries.iter() {
            let p = pruned.queries.get(a, b);
            // Pruned scores are never larger, and large scores survive.
            assert!(p <= v + 1e-12);
            if v > 0.3 {
                assert!(p > 0.0, "large score ({a},{b})={v} was pruned away");
            }
        }
    }

    #[test]
    fn disconnected_pairs_score_zero() {
        let g = figure3_graph();
        let r = simrank(&g, &cfg(20));
        let flower = g.query_by_name("flower").unwrap().0;
        for other in ["pc", "camera", "digital camera", "tv"] {
            let o = g.query_by_name(other).unwrap().0;
            assert_eq!(r.queries.get(flower, o), 0.0);
        }
    }

    #[test]
    fn zero_iterations_gives_identity() {
        let g = figure3_graph();
        let r = simrank(&g, &cfg(0));
        assert_eq!(r.queries.n_pairs(), 0);
        assert_eq!(r.queries.get(0, 0), 1.0);
    }

    #[test]
    fn complete_bipartite_uniform_scores() {
        // In K_{m,n} all same-side pairs have identical scores by symmetry.
        let g = complete_bipartite(4, 3, EdgeData::from_clicks(1));
        let r = simrank(&g, &cfg(6));
        let first = r.queries.get(0, 1);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                assert!((r.queries.get(a, b) - first).abs() < 1e-12);
            }
        }
        let first_ad = r.ads.get(0, 1);
        for a in 0..3u32 {
            for b in (a + 1)..3u32 {
                assert!((r.ads.get(a, b) - first_ad).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pair_counts_recorded() {
        let g = figure3_graph();
        let r = simrank(&g, &cfg(3));
        assert_eq!(r.pair_counts.len(), 3);
        assert!(r.pair_counts[2].0 >= r.pair_counts[0].0);
    }

    #[test]
    fn convergence_diagnostics_recorded() {
        let g = figure3_graph();
        let r = simrank(&g, &cfg(8));
        assert_eq!(r.max_deltas.len(), 8);
        assert_eq!(r.iterations_run, 8);
        assert!(!r.converged);
        // Geometric decay: late deltas are below early ones.
        assert!(r.max_deltas[7] < r.max_deltas[0]);
    }

    #[test]
    fn tolerance_early_exit_matches_full_run() {
        let g = figure3_graph();
        let full = simrank(&g, &cfg(60));
        let tol = simrank(&g, &cfg(60).with_tolerance(1e-9));
        assert!(tol.converged);
        assert!(tol.iterations_run < 60);
        assert!(full.queries.max_abs_diff(&tol.queries) < 1e-7);
        assert_eq!(tol.pair_counts.len(), tol.iterations_run);
        assert_eq!(tol.max_deltas.len(), tol.iterations_run);
        assert!(*tol.max_deltas.last().unwrap() <= 1e-9);
    }
}
