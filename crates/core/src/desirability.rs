//! The desirability score of §9.3's edge-removal experiment.
//!
//! ```text
//! des(q1, q2) = Σ_{i ∈ E(q1) ∩ E(q2)}  w(q2, i) / |E(q2)|
//! ```
//!
//! Given two candidate rewrites `q2`, `q3` for `q1` that each share at least
//! one ad with `q1`, the higher-desirability candidate is the ground-truth
//! "right" rewrite. The experiment then deletes the shared edges and asks
//! whether a similarity method still ranks the candidates in desirability
//! order using only the remaining graph.

use simrankpp_graph::{ClickGraph, QueryId, WeightKind};

/// `des(q1, q2)`: average weight that `q2` sends to the ads it shares with
/// `q1` (0 when they share no ad).
pub fn desirability(g: &ClickGraph, q1: QueryId, q2: QueryId, kind: WeightKind) -> f64 {
    let n2 = g.query_degree(q2);
    if n2 == 0 {
        return 0.0;
    }
    let shared_weight: f64 = g
        .common_ads_iter(q1, q2)
        .map(|(_, _, e2)| e2.weight(kind))
        .sum();
    shared_weight / n2 as f64
}

/// Which of two candidates is the ground-truth preferable rewrite for `q1`.
/// Returns `None` on a tie.
pub fn preferred_rewrite(
    g: &ClickGraph,
    q1: QueryId,
    q2: QueryId,
    q3: QueryId,
    kind: WeightKind,
) -> Option<QueryId> {
    let d2 = desirability(g, q1, q2, kind);
    let d3 = desirability(g, q1, q3, kind);
    if d2 > d3 {
        Some(q2)
    } else if d3 > d2 {
        Some(q3)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrankpp_graph::{ClickGraphBuilder, EdgeData};

    fn w(clicks: u64) -> EdgeData {
        EdgeData::from_clicks(clicks)
    }

    #[test]
    fn desirability_basic() {
        // q2 shares ads a1, a2 with q1; w(q2,a1)=4, w(q2,a2)=2, |E(q2)|=3.
        let mut b = ClickGraphBuilder::new();
        b.add_named("q1", "a1", w(1));
        b.add_named("q1", "a2", w(1));
        b.add_named("q2", "a1", w(4));
        b.add_named("q2", "a2", w(2));
        b.add_named("q2", "a3", w(9));
        let g = b.build();
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        let d = desirability(&g, q1, q2, WeightKind::Clicks);
        assert!((d - 2.0).abs() < 1e-12, "got {d}"); // (4+2)/3
    }

    #[test]
    fn desirability_no_shared_ads_is_zero() {
        let mut b = ClickGraphBuilder::new();
        b.add_named("q1", "a1", w(1));
        b.add_named("q2", "a2", w(5));
        let g = b.build();
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        assert_eq!(desirability(&g, q1, q2, WeightKind::Clicks), 0.0);
    }

    #[test]
    fn desirability_is_asymmetric() {
        // des is normalized by the *candidate's* degree, not q1's.
        let mut b = ClickGraphBuilder::new();
        b.add_named("q1", "a1", w(2));
        b.add_named("q2", "a1", w(2));
        b.add_named("q2", "a2", w(2));
        let g = b.build();
        let q1 = g.query_by_name("q1").unwrap();
        let q2 = g.query_by_name("q2").unwrap();
        let d12 = desirability(&g, q1, q2, WeightKind::Clicks); // 2/2 = 1
        let d21 = desirability(&g, q2, q1, WeightKind::Clicks); // 2/1 = 2
        assert!((d12 - 1.0).abs() < 1e-12);
        assert!((d21 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn preferred_rewrite_picks_higher() {
        let mut b = ClickGraphBuilder::new();
        b.add_named("q1", "a1", w(1));
        b.add_named("q2", "a1", w(10)); // des = 10/1
        b.add_named("q3", "a1", w(2));
        b.add_named("q3", "a2", w(2)); // des = 2/2 = 1
        let g = b.build();
        let q = |n: &str| g.query_by_name(n).unwrap();
        assert_eq!(
            preferred_rewrite(&g, q("q1"), q("q2"), q("q3"), WeightKind::Clicks),
            Some(q("q2"))
        );
    }

    #[test]
    fn preferred_rewrite_tie_is_none() {
        let mut b = ClickGraphBuilder::new();
        b.add_named("q1", "a1", w(1));
        b.add_named("q2", "a1", w(3));
        b.add_named("q3", "a1", w(3));
        let g = b.build();
        let q = |n: &str| g.query_by_name(n).unwrap();
        assert_eq!(
            preferred_rewrite(&g, q("q1"), q("q2"), q("q3"), WeightKind::Clicks),
            None
        );
    }
}
