//! The paper's worked-example graphs.
//!
//! * [`figure3_graph`] — the Figure 3 sample click graph (queries *pc*,
//!   *camera*, *digital camera*, *tv*, *flower*; ads *hp.com*, *bestbuy.com*,
//!   *teleflora.com*, *orchids.com*). Tables 1 and 2 are computed on it.
//! * [`complete_bipartite`] — `K_{m,n}` click graphs as in Figure 4
//!   (`K_{2,2}` = camera/digital-camera, `K_{1,2}` = pc/camera), used for
//!   Tables 3–4 and the Theorem 6.x/7.1 property tests.
//! * [`figure5_graphs`] / [`figure6_graphs`] — the §8.1 weighted-consistency
//!   examples (flower/orchids vs flower/teleflora).

use crate::builder::ClickGraphBuilder;
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use crate::ids::{AdId, QueryId};

/// Edge list of the Figure 3 sample click graph.
///
/// Reconstructed from Table 1's common-ad counts: *camera* and *digital
/// camera* form a `K_{2,2}` with hp.com and bestbuy.com; *pc* reaches the pair
/// through hp.com only; *tv* through bestbuy.com only; *flower* is connected
/// to teleflora.com and orchids.com and to nothing else.
pub const FIGURE3_EDGES: &[(&str, &str)] = &[
    ("pc", "hp.com"),
    ("camera", "hp.com"),
    ("camera", "bestbuy.com"),
    ("digital camera", "hp.com"),
    ("digital camera", "bestbuy.com"),
    ("tv", "bestbuy.com"),
    ("flower", "teleflora.com"),
    ("flower", "orchids.com"),
];

/// Query display names of Figure 3, in the order the paper's tables list them.
pub const FIGURE3_QUERIES: &[&str] = &["pc", "camera", "digital camera", "tv", "flower"];

/// Builds the Figure 3 sample click graph (unweighted: one click per edge).
pub fn figure3_graph() -> ClickGraph {
    let mut b = ClickGraphBuilder::new();
    // Intern queries first so their ids follow the paper's table order.
    for q in FIGURE3_QUERIES {
        b.intern_query(q);
    }
    for (q, a) in FIGURE3_EDGES {
        b.add_named(q, a, EdgeData::from_clicks(1));
    }
    let g = b.build();
    debug_assert!(g.validate().is_ok());
    g
}

/// Builds the complete bipartite click graph `K_{m,n}`: `m` queries each
/// connected to all `n` ads, every edge carrying `edge` data.
pub fn complete_bipartite(m: usize, n: usize, edge: EdgeData) -> ClickGraph {
    let mut b = ClickGraphBuilder::new();
    for q in 0..m {
        for a in 0..n {
            b.add_edge(QueryId(q as u32), AdId(a as u32), edge);
        }
    }
    let g = b.build();
    debug_assert!(g.validate().is_ok());
    g
}

/// Figure 4(a): `K_{2,2}` — queries {camera, digital camera} × two ads.
pub fn figure4_k22() -> ClickGraph {
    let mut b = ClickGraphBuilder::new();
    for q in ["camera", "digital camera"] {
        for a in ["hp.com", "bestbuy.com"] {
            b.add_named(q, a, EdgeData::from_clicks(1));
        }
    }
    b.build()
}

/// Figure 4(b): `K_{1,2}` viewed from the query side — one ad clicked from
/// both *pc* and *camera*. (In the paper's `K_{m,2}` notation the "2" side is
/// the pair whose similarity is measured; here that is the two queries.)
pub fn figure4_k12() -> ClickGraph {
    let mut b = ClickGraphBuilder::new();
    b.add_named("pc", "ad", EdgeData::from_clicks(1));
    b.add_named("camera", "ad", EdgeData::from_clicks(1));
    b.build()
}

/// §8.1 Figure 5: two weighted graphs, each one ad with two queries.
/// Left: flower→100, orchids→100 (equal spread). Right: flower→100,
/// teleflora→1 (high variance). Weighted SimRank must rank the left pair as
/// more similar.
pub fn figure5_graphs() -> (ClickGraph, ClickGraph) {
    let mut left = ClickGraphBuilder::new();
    left.add_named("flower", "ad", weighted(100.0));
    left.add_named("orchids", "ad", weighted(100.0));

    let mut right = ClickGraphBuilder::new();
    right.add_named("flower", "ad", weighted(100.0));
    right.add_named("teleflora", "ad", weighted(1.0));

    (left.build(), right.build())
}

/// §8.1 Figure 6: equal spread in both graphs, but the left pair carries more
/// clicks (100/100 vs 1/1). Weighted SimRank must rank the left pair higher.
pub fn figure6_graphs() -> (ClickGraph, ClickGraph) {
    let mut left = ClickGraphBuilder::new();
    left.add_named("flower", "ad", weighted(100.0));
    left.add_named("orchids", "ad", weighted(100.0));

    let mut right = ClickGraphBuilder::new();
    right.add_named("flower", "ad", weighted(1.0));
    right.add_named("teleflora", "ad", weighted(1.0));

    (left.build(), right.build())
}

/// An edge whose click weight is `w` (used by the §8.1 figures, which only
/// talk about click counts).
fn weighted(w: f64) -> EdgeData {
    let clicks = w.round() as u64;
    EdgeData::new(
        clicks.max(1) * 10,
        clicks,
        w / (clicks.max(1) as f64 * 10.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_matches_table1_counts() {
        let g = figure3_graph();
        assert_eq!(g.n_queries(), 5);
        assert_eq!(g.n_ads(), 4);
        assert_eq!(g.n_edges(), 8);

        let q = |name: &str| g.query_by_name(name).unwrap();
        // Table 1: common-ad counts.
        assert_eq!(g.common_ads(q("pc"), q("camera")), 1);
        assert_eq!(g.common_ads(q("pc"), q("digital camera")), 1);
        assert_eq!(g.common_ads(q("pc"), q("tv")), 0);
        assert_eq!(g.common_ads(q("pc"), q("flower")), 0);
        assert_eq!(g.common_ads(q("camera"), q("digital camera")), 2);
        assert_eq!(g.common_ads(q("camera"), q("tv")), 1);
        assert_eq!(g.common_ads(q("camera"), q("flower")), 0);
        assert_eq!(g.common_ads(q("digital camera"), q("tv")), 1);
        assert_eq!(g.common_ads(q("tv"), q("flower")), 0);
    }

    #[test]
    fn query_order_matches_paper_tables() {
        let g = figure3_graph();
        for (i, name) in FIGURE3_QUERIES.iter().enumerate() {
            assert_eq!(g.query_name(QueryId(i as u32)), Some(*name));
        }
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4, EdgeData::from_clicks(1));
        assert_eq!(g.n_queries(), 3);
        assert_eq!(g.n_ads(), 4);
        assert_eq!(g.n_edges(), 12);
        for q in g.queries() {
            assert_eq!(g.query_degree(q), 4);
        }
        for a in g.ads() {
            assert_eq!(g.ad_degree(a), 3);
        }
    }

    #[test]
    fn figure4_graphs() {
        let k22 = figure4_k22();
        assert_eq!((k22.n_queries(), k22.n_ads(), k22.n_edges()), (2, 2, 4));
        let k12 = figure4_k12();
        assert_eq!((k12.n_queries(), k12.n_ads(), k12.n_edges()), (2, 1, 2));
    }

    #[test]
    fn figure5_weights() {
        let (l, r) = figure5_graphs();
        let lw: Vec<u64> = l.edges().map(|(_, _, e)| e.clicks).collect();
        assert_eq!(lw, vec![100, 100]);
        let rw: Vec<u64> = r.edges().map(|(_, _, e)| e.clicks).collect();
        assert_eq!(rw, vec![100, 1]);
    }

    #[test]
    fn figure6_weights() {
        let (l, r) = figure6_graphs();
        let lw: Vec<u64> = l.edges().map(|(_, _, e)| e.clicks).collect();
        assert_eq!(lw, vec![100, 100]);
        let rw: Vec<u64> = r.edges().map(|(_, _, e)| e.clicks).collect();
        assert_eq!(rw, vec![1, 1]);
    }
}
