//! The immutable CSR click graph.
//!
//! Both adjacency directions are materialized (query→ads and ad→queries),
//! each as a compressed sparse row structure with neighbor lists sorted by
//! id. Sorted neighbor lists make common-neighbor intersection — the kernel
//! of the evidence score (Eq. 7.3), the naive similarity (§3), and the
//! Pearson baseline (§9.1) — a linear merge.

use crate::edge::{EdgeData, WeightKind};
use crate::ids::{AdId, NodeRef, QueryId};
use crate::interner::Interner;
use serde::{Deserialize, Serialize};

/// An immutable weighted bipartite click graph in CSR form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClickGraph {
    // Query -> ads adjacency.
    pub(crate) q_offsets: Vec<u32>,
    pub(crate) q_nbrs: Vec<AdId>,
    pub(crate) q_edges: Vec<EdgeData>,
    // Ad -> queries adjacency.
    pub(crate) a_offsets: Vec<u32>,
    pub(crate) a_nbrs: Vec<QueryId>,
    pub(crate) a_edges: Vec<EdgeData>,
    // Optional display names.
    pub(crate) query_names: Option<Interner>,
    pub(crate) ad_names: Option<Interner>,
}

impl ClickGraph {
    /// Number of query nodes `|Q|`.
    #[inline]
    pub fn n_queries(&self) -> usize {
        self.q_offsets.len() - 1
    }

    /// Number of ad nodes `|A|`.
    #[inline]
    pub fn n_ads(&self) -> usize {
        self.a_offsets.len() - 1
    }

    /// Number of (query, ad) edges `|E|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.q_nbrs.len()
    }

    /// Total node count `|Q| + |A|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_queries() + self.n_ads()
    }

    /// The ads clicked for query `q` (the paper's `E(q)`), sorted by id,
    /// paired with their edge data.
    #[inline]
    pub fn ads_of(&self, q: QueryId) -> (&[AdId], &[EdgeData]) {
        let lo = self.q_offsets[q.index()] as usize;
        let hi = self.q_offsets[q.index() + 1] as usize;
        (&self.q_nbrs[lo..hi], &self.q_edges[lo..hi])
    }

    /// The queries that clicked ad `α` (the paper's `E(α)`), sorted by id,
    /// paired with their edge data.
    #[inline]
    pub fn queries_of(&self, a: AdId) -> (&[QueryId], &[EdgeData]) {
        let lo = self.a_offsets[a.index()] as usize;
        let hi = self.a_offsets[a.index() + 1] as usize;
        (&self.a_nbrs[lo..hi], &self.a_edges[lo..hi])
    }

    /// `N(q) = |E(q)|`: the number of ads adjacent to query `q`.
    #[inline]
    pub fn query_degree(&self, q: QueryId) -> usize {
        (self.q_offsets[q.index() + 1] - self.q_offsets[q.index()]) as usize
    }

    /// `N(α) = |E(α)|`: the number of queries adjacent to ad `α`.
    #[inline]
    pub fn ad_degree(&self, a: AdId) -> usize {
        (self.a_offsets[a.index() + 1] - self.a_offsets[a.index()]) as usize
    }

    /// Degree of either-side node.
    pub fn degree(&self, node: NodeRef) -> usize {
        match node {
            NodeRef::Query(q) => self.query_degree(q),
            NodeRef::Ad(a) => self.ad_degree(a),
        }
    }

    /// The edge data for `(q, α)`, if the edge exists (binary search).
    pub fn edge(&self, q: QueryId, a: AdId) -> Option<&EdgeData> {
        let (nbrs, edges) = self.ads_of(q);
        nbrs.binary_search(&a).ok().map(|i| &edges[i])
    }

    /// `true` when `(q, α)` is an edge.
    pub fn has_edge(&self, q: QueryId, a: AdId) -> bool {
        self.edge(q, a).is_some()
    }

    /// Iterates all edges as `(query, ad, &EdgeData)` in query-major order.
    pub fn edges(&self) -> impl Iterator<Item = (QueryId, AdId, &EdgeData)> {
        (0..self.n_queries()).flat_map(move |qi| {
            let q = QueryId(qi as u32);
            let (nbrs, edges) = self.ads_of(q);
            nbrs.iter().zip(edges).map(move |(&a, e)| (q, a, e))
        })
    }

    /// All query ids.
    pub fn queries(&self) -> impl Iterator<Item = QueryId> {
        (0..self.n_queries() as u32).map(QueryId)
    }

    /// All ad ids.
    pub fn ads(&self) -> impl Iterator<Item = AdId> {
        (0..self.n_ads() as u32).map(AdId)
    }

    /// All nodes of both sides.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef> + '_ {
        self.queries()
            .map(NodeRef::Query)
            .chain(self.ads().map(NodeRef::Ad))
    }

    /// Common-ad count `|E(q) ∩ E(q')|` between two queries (linear merge of
    /// sorted neighbor lists).
    pub fn common_ads(&self, q1: QueryId, q2: QueryId) -> usize {
        let (n1, _) = self.ads_of(q1);
        let (n2, _) = self.ads_of(q2);
        sorted_intersection_len(n1, n2)
    }

    /// Common-query count `|E(α) ∩ E(α')|` between two ads.
    pub fn common_queries(&self, a1: AdId, a2: AdId) -> usize {
        let (n1, _) = self.queries_of(a1);
        let (n2, _) = self.queries_of(a2);
        sorted_intersection_len(n1, n2)
    }

    /// Iterates the ads common to `q1` and `q2`, yielding
    /// `(ad, edge-from-q1, edge-from-q2)`.
    pub fn common_ads_iter(
        &self,
        q1: QueryId,
        q2: QueryId,
    ) -> impl Iterator<Item = (AdId, &EdgeData, &EdgeData)> {
        let (n1, e1) = self.ads_of(q1);
        let (n2, e2) = self.ads_of(q2);
        SortedPairMerge {
            left: n1,
            left_data: e1,
            right: n2,
            right_data: e2,
            i: 0,
            j: 0,
        }
    }

    /// Sum of the `kind` weights on edges incident to query `q`
    /// (the denominator of `normalized_weight(q, ·)` in §8.2).
    pub fn query_weight_sum(&self, q: QueryId, kind: WeightKind) -> f64 {
        self.ads_of(q).1.iter().map(|e| e.weight(kind)).sum()
    }

    /// Sum of the `kind` weights on edges incident to ad `α`.
    pub fn ad_weight_sum(&self, a: AdId, kind: WeightKind) -> f64 {
        self.queries_of(a).1.iter().map(|e| e.weight(kind)).sum()
    }

    /// The display name of a query, if names were recorded.
    pub fn query_name(&self, q: QueryId) -> Option<&str> {
        self.query_names.as_ref().and_then(|i| i.name(q.0))
    }

    /// The display name of an ad, if names were recorded.
    pub fn ad_name(&self, a: AdId) -> Option<&str> {
        self.ad_names.as_ref().and_then(|i| i.name(a.0))
    }

    /// Finds a query id by display name.
    pub fn query_by_name(&self, name: &str) -> Option<QueryId> {
        self.query_names
            .as_ref()
            .and_then(|i| i.get(name))
            .map(QueryId)
    }

    /// Finds an ad id by display name.
    pub fn ad_by_name(&self, name: &str) -> Option<AdId> {
        self.ad_names.as_ref().and_then(|i| i.get(name)).map(AdId)
    }

    /// The query-name interner, if present.
    pub fn query_interner(&self) -> Option<&Interner> {
        self.query_names.as_ref()
    }

    /// The ad-name interner, if present.
    pub fn ad_interner(&self) -> Option<&Interner> {
        self.ad_names.as_ref()
    }

    /// Start offset of `q`'s row in the query→ad CSR edge arrays, exposed so
    /// per-edge side tables (e.g. weighted-SimRank transition factors) can be
    /// kept aligned with `ads_of` order. `q == n_queries()` is the end
    /// sentinel.
    #[inline]
    pub fn query_csr_offset(&self, q: QueryId) -> usize {
        self.q_offsets[q.index()] as usize
    }

    /// Start offset of `a`'s row in the ad→query CSR edge arrays
    /// (see [`ClickGraph::query_csr_offset`]).
    #[inline]
    pub fn ad_csr_offset(&self, a: AdId) -> usize {
        self.a_offsets[a.index()] as usize
    }

    /// Rebuilds the interners' reverse indices. Call after deserializing a
    /// graph (serde skips the redundant name→id maps).
    pub fn rebuild_name_indices(&mut self) {
        if let Some(i) = self.query_names.as_mut() {
            i.rebuild_index();
        }
        if let Some(i) = self.ad_names.as_mut() {
            i.rebuild_index();
        }
    }

    /// A deterministic FNV-1a digest of the graph's full logical content:
    /// node counts, the forward CSR (offsets, neighbors, per-edge weights bit
    /// patterns), and display names in id order. Two graphs with equal
    /// fingerprints have identical CSR arrays and name tables — the backward
    /// CSR is a function of the forward one, so it needs no separate hashing.
    /// Used by the segmented-store differential tests to assert bit-for-bit
    /// reconstruction.
    pub fn fingerprint(&self) -> u64 {
        use simrankpp_util::{bytes_of, fnv1a_seeded};
        let mut h = fnv1a_seeded(
            simrankpp_util::fnv1a(&[]),
            &(self.n_queries() as u64).to_ne_bytes(),
        );
        h = fnv1a_seeded(h, &(self.n_ads() as u64).to_ne_bytes());
        h = fnv1a_seeded(h, bytes_of(&self.q_offsets));
        for &a in &self.q_nbrs {
            h = fnv1a_seeded(h, &a.0.to_ne_bytes());
        }
        for e in &self.q_edges {
            h = fnv1a_seeded(h, &e.impressions.to_ne_bytes());
            h = fnv1a_seeded(h, &e.clicks.to_ne_bytes());
            h = fnv1a_seeded(h, &e.expected_click_rate.to_bits().to_ne_bytes());
        }
        for interner in [&self.query_names, &self.ad_names] {
            match interner {
                None => h = fnv1a_seeded(h, &[0]),
                Some(i) => {
                    h = fnv1a_seeded(h, &[1]);
                    for (_, name) in i.iter() {
                        h = fnv1a_seeded(h, &(name.len() as u64).to_ne_bytes());
                        h = fnv1a_seeded(h, name.as_bytes());
                    }
                }
            }
        }
        h
    }

    /// Checks structural invariants; used by tests and after deserialization.
    ///
    /// Verified: offset monotonicity, neighbor sortedness + in-range ids,
    /// forward/backward edge-count agreement, clicks ≤ impressions, and that
    /// each direction is the exact transpose of the other.
    pub fn validate(&self) -> Result<(), String> {
        if self.q_offsets.is_empty() || self.a_offsets.is_empty() {
            return Err("offset arrays must have at least one entry".into());
        }
        if self.q_nbrs.len() != self.q_edges.len() || self.a_nbrs.len() != self.a_edges.len() {
            return Err("neighbor/edge-data arrays must be parallel".into());
        }
        if self.q_nbrs.len() != self.a_nbrs.len() {
            return Err(format!(
                "forward ({}) and backward ({}) edge counts differ",
                self.q_nbrs.len(),
                self.a_nbrs.len()
            ));
        }
        check_csr(&self.q_offsets, &self.q_nbrs, self.n_ads(), "query")?;
        check_csr_q(&self.a_offsets, &self.a_nbrs, self.n_queries(), "ad")?;
        for (q, a, e) in self.edges() {
            if e.clicks > e.impressions {
                return Err(format!("edge ({q},{a}): clicks exceed impressions"));
            }
            let (back, back_edges) = self.queries_of(a);
            match back.binary_search(&q) {
                Ok(i) => {
                    if back_edges[i] != *e {
                        return Err(format!("edge ({q},{a}): forward/backward data mismatch"));
                    }
                }
                Err(_) => return Err(format!("edge ({q},{a}) missing from transpose")),
            }
        }
        Ok(())
    }
}

fn check_csr(offsets: &[u32], nbrs: &[AdId], n_other: usize, side: &str) -> Result<(), String> {
    if *offsets.last().unwrap() as usize != nbrs.len() {
        return Err(format!("{side}: last offset != neighbor count"));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(format!("{side}: offsets not monotone"));
        }
        let row = &nbrs[w[0] as usize..w[1] as usize];
        for pair in row.windows(2) {
            if pair[0] >= pair[1] {
                return Err(format!("{side}: neighbors not strictly sorted"));
            }
        }
        if let Some(last) = row.last() {
            if last.index() >= n_other {
                return Err(format!("{side}: neighbor id out of range"));
            }
        }
    }
    Ok(())
}

fn check_csr_q(
    offsets: &[u32],
    nbrs: &[QueryId],
    n_other: usize,
    side: &str,
) -> Result<(), String> {
    if *offsets.last().unwrap() as usize != nbrs.len() {
        return Err(format!("{side}: last offset != neighbor count"));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(format!("{side}: offsets not monotone"));
        }
        let row = &nbrs[w[0] as usize..w[1] as usize];
        for pair in row.windows(2) {
            if pair[0] >= pair[1] {
                return Err(format!("{side}: neighbors not strictly sorted"));
            }
        }
        if let Some(last) = row.last() {
            if last.index() >= n_other {
                return Err(format!("{side}: neighbor id out of range"));
            }
        }
    }
    Ok(())
}

fn sorted_intersection_len<T: Ord>(a: &[T], b: &[T]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

struct SortedPairMerge<'g> {
    left: &'g [AdId],
    left_data: &'g [EdgeData],
    right: &'g [AdId],
    right_data: &'g [EdgeData],
    i: usize,
    j: usize,
}

impl<'g> Iterator for SortedPairMerge<'g> {
    type Item = (AdId, &'g EdgeData, &'g EdgeData);

    fn next(&mut self) -> Option<Self::Item> {
        while self.i < self.left.len() && self.j < self.right.len() {
            match self.left[self.i].cmp(&self.right[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let out = (
                        self.left[self.i],
                        &self.left_data[self.i],
                        &self.right_data[self.j],
                    );
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ClickGraphBuilder;
    use crate::edge::{EdgeData, WeightKind};
    use crate::ids::{AdId, QueryId};

    fn small() -> crate::ClickGraph {
        let mut b = ClickGraphBuilder::new();
        b.add_named("pc", "hp.com", EdgeData::from_clicks(1));
        b.add_named("camera", "hp.com", EdgeData::from_clicks(2));
        b.add_named("camera", "bestbuy.com", EdgeData::from_clicks(3));
        b.build()
    }

    #[test]
    fn counts() {
        let g = small();
        assert_eq!(g.n_queries(), 2);
        assert_eq!(g.n_ads(), 2);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.n_nodes(), 4);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = small();
        let pc = g.query_by_name("pc").unwrap();
        let camera = g.query_by_name("camera").unwrap();
        let hp = g.ad_by_name("hp.com").unwrap();
        assert_eq!(g.query_degree(pc), 1);
        assert_eq!(g.query_degree(camera), 2);
        assert_eq!(g.ad_degree(hp), 2);
        let (qs, _) = g.queries_of(hp);
        assert_eq!(qs, &[pc, camera]);
    }

    #[test]
    fn edge_lookup() {
        let g = small();
        let camera = g.query_by_name("camera").unwrap();
        let bb = g.ad_by_name("bestbuy.com").unwrap();
        assert_eq!(g.edge(camera, bb).unwrap().clicks, 3);
        let pc = g.query_by_name("pc").unwrap();
        assert!(!g.has_edge(pc, bb));
    }

    #[test]
    fn common_ads_merge() {
        let g = small();
        let pc = g.query_by_name("pc").unwrap();
        let camera = g.query_by_name("camera").unwrap();
        assert_eq!(g.common_ads(pc, camera), 1);
        let common: Vec<_> = g.common_ads_iter(pc, camera).collect();
        assert_eq!(common.len(), 1);
        assert_eq!(common[0].1.clicks, 1);
        assert_eq!(common[0].2.clicks, 2);
    }

    #[test]
    fn weight_sums() {
        let g = small();
        let camera = g.query_by_name("camera").unwrap();
        assert_eq!(g.query_weight_sum(camera, WeightKind::Clicks), 5.0);
        let hp = g.ad_by_name("hp.com").unwrap();
        assert_eq!(g.ad_weight_sum(hp, WeightKind::Clicks), 3.0);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = small();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        let total_clicks: u64 = edges.iter().map(|(_, _, e)| e.clicks).sum();
        assert_eq!(total_clicks, 6);
    }

    #[test]
    fn validate_accepts_well_formed() {
        small().validate().unwrap();
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = ClickGraphBuilder::new().build();
        assert_eq!(g.n_queries(), 0);
        assert_eq!(g.n_ads(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn ids_out_of_order_input_still_sorted() {
        let mut b = ClickGraphBuilder::new();
        b.add_edge(QueryId(0), AdId(3), EdgeData::from_clicks(1));
        b.add_edge(QueryId(0), AdId(1), EdgeData::from_clicks(1));
        b.add_edge(QueryId(0), AdId(2), EdgeData::from_clicks(1));
        let g = b.build();
        let (nbrs, _) = g.ads_of(QueryId(0));
        assert_eq!(nbrs, &[AdId(1), AdId(2), AdId(3)]);
        g.validate().unwrap();
    }
}
