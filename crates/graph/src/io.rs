//! Click-graph serialization.
//!
//! Two formats:
//!
//! * **TSV** — one edge per line, `query \t ad \t impressions \t clicks \t
//!   expected_click_rate`, human-inspectable and diff-friendly (the format the
//!   examples write). Buffered readers/writers throughout.
//! * **serde** — the whole [`ClickGraph`] derives `Serialize`/`Deserialize`
//!   (JSON via `serde_json` in the bench crate) for experiment artifacts.

use crate::builder::ClickGraphBuilder;
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes `g` as edge-per-line TSV. Nodes must have display names.
pub fn write_tsv<W: Write>(g: &ClickGraph, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for (q, a, e) in g.edges() {
        let qname = g
            .query_name(q)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "query has no name"))?;
        let aname = g
            .ad_name(a)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "ad has no name"))?;
        writeln!(
            w,
            "{qname}\t{aname}\t{}\t{}\t{}",
            e.impressions, e.clicks, e.expected_click_rate
        )?;
    }
    w.flush()
}

/// Reads a TSV edge list written by [`write_tsv`]. Repeated edges accumulate.
pub fn read_tsv<R: Read>(input: R) -> io::Result<ClickGraph> {
    let reader = BufReader::new(input);
    let mut b = ClickGraphBuilder::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (Some(q), Some(a), Some(impr), Some(clicks), Some(ecr)) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(bad_line(line_no, "expected 5 tab-separated fields"));
        };
        let impressions: u64 = impr
            .parse()
            .map_err(|_| bad_line(line_no, "bad impressions"))?;
        let clicks: u64 = clicks
            .parse()
            .map_err(|_| bad_line(line_no, "bad clicks"))?;
        let ecr: f64 = ecr.parse().map_err(|_| bad_line(line_no, "bad ECR"))?;
        if clicks > impressions || !ecr.is_finite() || ecr < 0.0 {
            return Err(bad_line(line_no, "edge data violates invariants"));
        }
        b.add_named(
            q,
            a,
            EdgeData {
                impressions,
                clicks,
                expected_click_rate: ecr,
            },
        );
    }
    Ok(b.build())
}

fn bad_line(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("TSV line {line_no}: {msg}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3_graph;

    #[test]
    fn tsv_roundtrip() {
        let g = figure3_graph();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(g2.n_queries(), g.n_queries());
        assert_eq!(g2.n_ads(), g.n_ads());
        assert_eq!(g2.n_edges(), g.n_edges());
        // Edge-by-edge comparison through names (ids may be permuted).
        for (q, a, e) in g.edges() {
            let q2 = g2.query_by_name(g.query_name(q).unwrap()).unwrap();
            let a2 = g2.ad_by_name(g.ad_name(a).unwrap()).unwrap();
            assert_eq!(g2.edge(q2, a2).unwrap(), e);
        }
        g2.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let tsv = "# comment\n\nq1\tad1\t10\t2\t0.2\n";
        let g = read_tsv(tsv.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn malformed_line_is_rejected() {
        let tsv = "q1\tad1\t10\n";
        let err = read_tsv(tsv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn invariant_violation_rejected() {
        let tsv = "q1\tad1\t2\t5\t0.5\n"; // clicks > impressions
        assert!(read_tsv(tsv.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_edges_accumulate_on_read() {
        let tsv = "q\tad\t10\t1\t0.1\nq\tad\t10\t3\t0.3\n";
        let g = read_tsv(tsv.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 1);
        let q = g.query_by_name("q").unwrap();
        let a = g.ad_by_name("ad").unwrap();
        assert_eq!(g.edge(q, a).unwrap().clicks, 4);
    }

    #[test]
    fn serde_json_roundtrip() {
        let g = figure3_graph();
        let json = serde_json::to_string(&g).unwrap();
        let mut g2: ClickGraph = serde_json::from_str(&json).unwrap();
        // Interner reverse indices are skipped by serde; rebuild to use them.
        if let Some(i) = g2.query_names.as_mut() {
            i.rebuild_index();
        }
        if let Some(i) = g2.ad_names.as_mut() {
            i.rebuild_index();
        }
        assert_eq!(g2.n_edges(), g.n_edges());
        assert!(g2.query_by_name("camera").is_some());
        g2.validate().unwrap();
    }
}
