//! Click-graph serialization.
//!
//! Two formats:
//!
//! * **TSV** — one edge per line, `query \t ad \t impressions \t clicks \t
//!   expected_click_rate`, human-inspectable and diff-friendly (the format the
//!   examples write). Buffered readers/writers throughout.
//! * **serde** — the whole [`ClickGraph`] derives `Serialize`/`Deserialize`
//!   (JSON via `serde_json` in the bench crate) for experiment artifacts.

use crate::builder::ClickGraphBuilder;
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes `g` as edge-per-line TSV. Nodes must have display names, and the
/// names must be representable in the format: a tab or newline inside a name
/// would shift every following field on read, and a leading `#` on a query
/// name would make the whole line parse as a comment, so such names are
/// rejected here rather than silently corrupting the file.
pub fn write_tsv<W: Write>(g: &ClickGraph, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for (q, a, e) in g.edges() {
        let qname = g
            .query_name(q)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "query has no name"))?;
        let aname = g
            .ad_name(a)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "ad has no name"))?;
        check_tsv_name("query", qname)?;
        check_tsv_name("ad", aname)?;
        if qname.starts_with('#') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "query name {qname:?} starts with '#'; the line would read back as a comment"
                ),
            ));
        }
        writeln!(
            w,
            "{qname}\t{aname}\t{}\t{}\t{}",
            e.impressions, e.clicks, e.expected_click_rate
        )?;
    }
    w.flush()
}

fn check_tsv_name(field: &str, name: &str) -> io::Result<()> {
    if name.contains(['\t', '\n', '\r']) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{field} name {name:?} contains a tab or newline; TSV cannot represent it"),
        ));
    }
    Ok(())
}

/// Reads a TSV edge list written by [`write_tsv`]. Repeated edges accumulate.
pub fn read_tsv<R: Read>(input: R) -> io::Result<ClickGraph> {
    let reader = BufReader::new(input);
    let mut b = ClickGraphBuilder::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (Some(q), Some(a), Some(impr), Some(clicks), Some(ecr)) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(bad_line(line_no, "expected 5 tab-separated fields"));
        };
        if parts.next().is_some() {
            return Err(bad_line(
                line_no,
                "more than 5 tab-separated fields (embedded tab in a name?)",
            ));
        }
        let impressions: u64 = impr
            .parse()
            .map_err(|_| bad_line(line_no, &format!("bad impressions field {impr:?}")))?;
        let clicks: u64 = clicks
            .parse()
            .map_err(|_| bad_line(line_no, &format!("bad clicks field {clicks:?}")))?;
        let ecr: f64 = ecr
            .parse()
            .map_err(|_| bad_line(line_no, &format!("bad ECR field {ecr:?}")))?;
        if clicks > impressions || !ecr.is_finite() || ecr < 0.0 {
            return Err(bad_line(line_no, "edge data violates invariants"));
        }
        b.add_named(
            q,
            a,
            EdgeData {
                impressions,
                clicks,
                expected_click_rate: ecr,
            },
        );
    }
    Ok(b.build())
}

fn bad_line(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("TSV line {line_no}: {msg}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3_graph;

    #[test]
    fn tsv_roundtrip() {
        let g = figure3_graph();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(g2.n_queries(), g.n_queries());
        assert_eq!(g2.n_ads(), g.n_ads());
        assert_eq!(g2.n_edges(), g.n_edges());
        // Edge-by-edge comparison through names (ids may be permuted).
        for (q, a, e) in g.edges() {
            let q2 = g2.query_by_name(g.query_name(q).unwrap()).unwrap();
            let a2 = g2.ad_by_name(g.ad_name(a).unwrap()).unwrap();
            assert_eq!(g2.edge(q2, a2).unwrap(), e);
        }
        g2.validate().unwrap();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let tsv = "# comment\n\nq1\tad1\t10\t2\t0.2\n";
        let g = read_tsv(tsv.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn malformed_line_is_rejected() {
        let tsv = "q1\tad1\t10\n";
        let err = read_tsv(tsv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn invariant_violation_rejected() {
        let tsv = "q1\tad1\t2\t5\t0.5\n"; // clicks > impressions
        assert!(read_tsv(tsv.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_edges_accumulate_on_read() {
        let tsv = "q\tad\t10\t1\t0.1\nq\tad\t10\t3\t0.3\n";
        let g = read_tsv(tsv.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 1);
        let q = g.query_by_name("q").unwrap();
        let a = g.ad_by_name("ad").unwrap();
        assert_eq!(g.edge(q, a).unwrap().clicks, 4);
    }

    #[test]
    fn tab_in_name_rejected_on_write() {
        // Regression: a tab inside a name used to be written verbatim,
        // shifting every later field on read.
        let mut b = ClickGraphBuilder::new();
        b.add_named("camera\tcheap", "hp.com", EdgeData::from_clicks(1));
        let g = b.build();
        let err = write_tsv(&g, Vec::new()).unwrap_err();
        assert!(err.to_string().contains("query name"), "{err}");

        let mut b = ClickGraphBuilder::new();
        b.add_named("camera", "hp.com\nbestbuy.com", EdgeData::from_clicks(1));
        let g = b.build();
        let err = write_tsv(&g, Vec::new()).unwrap_err();
        assert!(err.to_string().contains("ad name"), "{err}");
    }

    #[test]
    fn comment_query_name_rejected_on_write() {
        let mut b = ClickGraphBuilder::new();
        b.add_named("#1 shoes", "store.com", EdgeData::from_clicks(1));
        let g = b.build();
        let err = write_tsv(&g, Vec::new()).unwrap_err();
        assert!(err.to_string().contains("comment"), "{err}");
    }

    #[test]
    fn extra_fields_reported_on_read() {
        let tsv = "camera\tcheap\thp.com\t10\t2\t0.2\n";
        let err = read_tsv(tsv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("embedded tab"), "{err}");
    }

    #[test]
    fn bad_field_reported_with_content() {
        let tsv = "q\tad\tmany\t2\t0.2\n";
        let err = read_tsv(tsv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("\"many\""), "{err}");
    }

    #[test]
    fn adversarial_names_roundtrip() {
        // Everything short of tabs/newlines/leading-# must survive verbatim:
        // spaces, quotes, unicode, '#' in the middle, '=' and ':' (the serve
        // protocol separators are tabs, so these are all legal).
        let mut b = ClickGraphBuilder::new();
        for (q, a) in [
            ("digital camera", "hp.com"),
            ("caméra pas chère", "amazon.fr"),
            ("\"quoted\" query", "ad #5"),
            ("a=b:c", "weird ad"),
        ] {
            b.add_named(q, a, EdgeData::from_clicks(2));
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(g2.n_edges(), g.n_edges());
        for (q, a, e) in g.edges() {
            let q2 = g2.query_by_name(g.query_name(q).unwrap()).unwrap();
            let a2 = g2.ad_by_name(g.ad_name(a).unwrap()).unwrap();
            assert_eq!(g2.edge(q2, a2).unwrap(), e);
        }
    }

    #[test]
    fn serde_json_roundtrip() {
        let g = figure3_graph();
        let json = serde_json::to_string(&g).unwrap();
        let mut g2: ClickGraph = serde_json::from_str(&json).unwrap();
        // Interner reverse indices are skipped by serde; rebuild to use them.
        if let Some(i) = g2.query_names.as_mut() {
            i.rebuild_index();
        }
        if let Some(i) = g2.ad_names.as_mut() {
            i.rebuild_index();
        }
        assert_eq!(g2.n_edges(), g.n_edges());
        assert!(g2.query_by_name("camera").is_some());
        g2.validate().unwrap();
    }
}
