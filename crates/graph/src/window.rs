//! Sliding-window click-graph accumulation.
//!
//! §2 defines the click graph "for a specific time period"; the evaluation
//! uses "a two-weeks click graph" that a production back-end maintains as a
//! rolling window: new click/impression events arrive continuously, and
//! buckets older than the window retire. [`SlidingWindowGraph`] implements
//! exactly that: per-epoch event buckets, [`SlidingWindowGraph::advance`]
//! to rotate out the oldest bucket (reporting which edges it retired, so
//! an incremental refresh knows what went stale), and
//! [`SlidingWindowGraph::freeze`] to build an immutable [`ClickGraph`] of
//! the surviving window for the front-end to score.
//!
//! Names are interned once in a shared interner so node ids are stable
//! across freezes — a query keeps its id for its entire lifetime, which
//! lets downstream caches (score matrices, rewrite index rows) be diffed
//! across windows. Retired nodes stay interned and simply appear isolated.
//!
//! Buckets hold **raw events in arrival order**, not pre-accumulated
//! per-edge data. That is deliberate: [`EdgeData::merge`] averages ECR with
//! an fp division per step, so the merge is not associative at the bit
//! level — folding per-bucket partials would produce graphs that differ in
//! the last ulp from a from-scratch build of the same events, and every
//! downstream bit-identity harness (sharded == monolithic, incremental ==
//! full) would see phantom diffs. Replaying raw events in arrival order
//! makes `freeze()` bit-identical to a scratch [`ClickGraphBuilder`] fed
//! the surviving events, by construction.
//!
//! **Recency decay** ([`SlidingWindowGraph::with_decay`]): inside the
//! window, old evidence can be down-weighted rather than trusted equally.
//! With decay factor `λ < 1`, `freeze()` replaces each edge's ECR with the
//! recency-weighted average of its surviving events,
//!
//! ```text
//! ecr = Σ_e λ^gap(e) · impressions(e) · ecr(e)
//!     / Σ_e λ^gap(e) · impressions(e)
//! ```
//!
//! where `gap(e)` is the event's age in epochs **behind the edge's own
//! newest surviving event** (impressions/clicks stay undecayed counts).
//! Anchoring the ages per edge — rather than to the current epoch — is
//! what keeps the streaming refresh incremental: an edge's ECR depends
//! only on its own surviving event set, so merely advancing the window
//! leaves every untouched edge's ECR bit-identical, and the only
//! components an epoch boundary can dirty are those holding an observed
//! or retired event. (An absolute per-epoch decay would re-age every edge
//! on every advance and force a full recompute each epoch.) The flip side
//! is a deliberate division of labour: decay re-mixes evidence *within*
//! an edge toward recency; making stale edges vanish outright is the
//! window's job. Edges whose surviving events carry zero impressions fall
//! back to a λ-weighted mean of their ECRs. `λ = 1` dispatches to the
//! exact replay path so the undecayed configuration stays bit-identical
//! to a scratch build.

use crate::builder::ClickGraphBuilder;
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use crate::ids::{AdId, QueryId};
use crate::interner::Interner;
use simrankpp_util::FxHashMap;
use std::collections::VecDeque;

/// A rolling multi-bucket click-graph accumulator.
#[derive(Debug, Clone)]
pub struct SlidingWindowGraph {
    /// Window length in buckets (e.g. 14 for two weeks of daily buckets).
    window: usize,
    /// Oldest → newest per-bucket raw events, each in arrival order.
    buckets: VecDeque<Vec<(u32, u32, EdgeData)>>,
    query_names: Interner,
    ad_names: Interner,
    /// Number of `advance()` calls so far (the current bucket's index).
    epoch: u64,
    /// Per-epoch ECR decay factor in `(0, 1]`; 1 = no decay.
    decay: f64,
}

impl SlidingWindowGraph {
    /// Creates a window of `window` buckets (≥ 1), starting with one empty
    /// current bucket and no decay.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one bucket");
        let mut buckets = VecDeque::with_capacity(window);
        buckets.push_back(Vec::new());
        SlidingWindowGraph {
            window,
            buckets,
            query_names: Interner::new(),
            ad_names: Interner::new(),
            epoch: 0,
            decay: 1.0,
        }
    }

    /// Sets the per-epoch ECR decay factor (see the module docs). `1.0`
    /// keeps freezes bit-identical to scratch builds; smaller values
    /// down-weight older buckets' ECR evidence geometrically.
    ///
    /// # Panics
    /// Panics unless `0 < decay ≤ 1`.
    pub fn with_decay(mut self, decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        self.decay = decay;
        self
    }

    /// The configured window length in buckets.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured per-epoch ECR decay factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// The current bucket's index (starts at 0, +1 per [`Self::advance`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of buckets currently held (≤ window).
    pub fn buckets_held(&self) -> usize {
        self.buckets.len()
    }

    /// The query-name interner (stable ids across the window's lifetime).
    pub fn query_names(&self) -> &Interner {
        &self.query_names
    }

    /// The ad-name interner (stable ids across the window's lifetime).
    pub fn ad_names(&self) -> &Interner {
        &self.ad_names
    }

    /// Reconstructs a window mid-stream from checkpointed state: the
    /// interners carry every name ever observed (so ids stay stable across
    /// the crash — retired nodes keep appearing isolated, exactly as in the
    /// uninterrupted run), and the window restarts at `epoch` with a single
    /// empty current bucket. The caller then replays the click log from the
    /// first record of bucket `epoch`; because bucket assignment is purely
    /// position-relative to epoch marks, the replay rebuilds the surviving
    /// buckets bit-identically.
    pub fn resume(window: usize, epoch: u64, query_names: Interner, ad_names: Interner) -> Self {
        assert!(window >= 1, "window must hold at least one bucket");
        let mut buckets = VecDeque::with_capacity(window);
        buckets.push_back(Vec::new());
        SlidingWindowGraph {
            window,
            buckets,
            query_names,
            ad_names,
            epoch,
            decay: 1.0,
        }
    }

    /// Number of surviving (un-retired) raw events across all buckets.
    pub fn events_held(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Records an observation of `(query, ad)` in the current bucket.
    /// Returns the stable ids.
    pub fn observe(&mut self, query: &str, ad: &str, data: EdgeData) -> (QueryId, AdId) {
        let q = QueryId(self.query_names.intern(query));
        let a = AdId(self.ad_names.intern(ad));
        self.push_event(q, a, data);
        (q, a)
    }

    /// Records by stable ids (for callers that interned up front).
    pub fn observe_ids(&mut self, q: QueryId, a: AdId, data: EdgeData) {
        assert!(
            (q.0 as usize) < self.query_names.len() && (a.0 as usize) < self.ad_names.len(),
            "ids must come from this window's interners"
        );
        self.push_event(q, a, data);
    }

    fn push_event(&mut self, q: QueryId, a: AdId, data: EdgeData) {
        self.buckets
            .back_mut()
            .expect("always at least one bucket")
            .push((q.0, a.0, data));
    }

    /// Closes the current bucket and opens a new one; the oldest bucket
    /// retires once more than `window` are held. Ids remain stable.
    ///
    /// Returns the deduplicated `(query, ad)` endpoints of every event the
    /// call retired — exactly the edges whose accumulated data the next
    /// [`Self::freeze`] may change, which is what an incremental index
    /// refresh needs to mark dirty.
    pub fn advance(&mut self) -> Vec<(QueryId, AdId)> {
        self.buckets.push_back(Vec::new());
        self.epoch += 1;
        let mut retired = Vec::new();
        while self.buckets.len() > self.window {
            let bucket = self.buckets.pop_front().expect("len > window ≥ 1");
            retired.extend(bucket.iter().map(|&(q, a, _)| (QueryId(q), AdId(a))));
        }
        retired.sort_unstable_by_key(|&(q, a)| (q.0, a.0));
        retired.dedup();
        retired
    }

    /// Advances until the current bucket is `epoch`, accumulating retired
    /// endpoints across all the rotations. A no-op (empty result) when
    /// `epoch` is not ahead of the current one — a click log can repeat or
    /// reorder epoch marks without corrupting the window.
    pub fn advance_to(&mut self, epoch: u64) -> Vec<(QueryId, AdId)> {
        let mut retired = Vec::new();
        while self.epoch < epoch {
            retired.extend(self.advance());
        }
        retired.sort_unstable_by_key(|&(q, a)| (q.0, a.0));
        retired.dedup();
        retired
    }

    /// Freezes the current window into an immutable [`ClickGraph`].
    ///
    /// Node ids in the frozen graph equal the stable interned ids (every
    /// query and ad ever observed keeps its id, even if all its edges have
    /// retired — it simply appears isolated).
    ///
    /// With no decay configured this **replays the surviving raw events in
    /// arrival order** through a fresh [`ClickGraphBuilder`], so the result
    /// is bit-identical — ECR included — to a scratch build of the same
    /// events (see the module docs for why per-bucket pre-accumulation
    /// cannot deliver that). With `decay < 1` the decayed fold described in
    /// the module docs runs instead.
    pub fn freeze(&self) -> ClickGraph {
        let g = if self.decay >= 1.0 {
            let mut b = self.universe_builder();
            for bucket in &self.buckets {
                for &(q, a, data) in bucket {
                    b.add_edge(QueryId(q), AdId(a), data);
                }
            }
            b.build()
        } else {
            self.freeze_decayed()
        };
        debug_assert!(g.validate().is_ok());
        g
    }

    /// The decayed fold: per-edge undecayed impression/click sums plus the
    /// recency-weighted ECR average, folded over events oldest → newest
    /// with ages anchored to each edge's own newest surviving event (see
    /// the module docs for why the anchoring matters).
    fn freeze_decayed(&self) -> ClickGraph {
        struct Acc {
            impressions: u64,
            clicks: u64,
            /// Σ λ^gap · impressions · ecr
            num: f64,
            /// Σ λ^gap · impressions
            den: f64,
            /// Σ λ^gap · ecr (zero-impression fallback numerator)
            wnum: f64,
            /// Σ λ^gap (zero-impression fallback denominator)
            wden: f64,
        }
        // Pass 1: each edge's newest bucket index — the decay anchor.
        let mut newest: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for (i, bucket) in self.buckets.iter().enumerate() {
            for &(q, a, _) in bucket {
                newest.insert((q, a), i);
            }
        }
        // Pass 2: fold in arrival order with per-edge-anchored weights.
        let mut acc: FxHashMap<(u32, u32), Acc> = FxHashMap::default();
        for (i, bucket) in self.buckets.iter().enumerate() {
            for &(q, a, data) in bucket {
                let gap = (newest[&(q, a)] - i) as i32;
                let weight = self.decay.powi(gap);
                let e = acc.entry((q, a)).or_insert(Acc {
                    impressions: 0,
                    clicks: 0,
                    num: 0.0,
                    den: 0.0,
                    wnum: 0.0,
                    wden: 0.0,
                });
                e.impressions += data.impressions;
                e.clicks += data.clicks;
                e.num += weight * data.impressions as f64 * data.expected_click_rate;
                e.den += weight * data.impressions as f64;
                e.wnum += weight * data.expected_click_rate;
                e.wden += weight;
            }
        }
        let mut edges: Vec<((u32, u32), Acc)> = acc.into_iter().collect();
        edges.sort_unstable_by_key(|&(key, _)| key);
        let mut b = self.universe_builder();
        for ((q, a), e) in edges {
            let ecr = if e.den > 0.0 {
                e.num / e.den
            } else {
                e.wnum / e.wden
            };
            b.add_edge(
                QueryId(q),
                AdId(a),
                EdgeData {
                    impressions: e.impressions,
                    clicks: e.clicks,
                    expected_click_rate: ecr,
                },
            );
        }
        b.build()
    }

    /// A fresh builder with the window's full name universe pre-interned in
    /// id order, so scratch builds share the window's stable id space.
    pub fn universe_builder(&self) -> ClickGraphBuilder {
        let mut b = ClickGraphBuilder::new();
        for (_, name) in self.query_names.iter() {
            b.intern_query(name);
        }
        for (_, name) in self.ad_names.iter() {
            b.intern_ad(name);
        }
        b
    }

    /// Looks up a query's stable id without inserting.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.query_names.get(name).map(QueryId)
    }

    /// Looks up an ad's stable id without inserting.
    pub fn ad_id(&self, name: &str) -> Option<AdId> {
        self.ad_names.get(name).map(AdId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn click() -> EdgeData {
        EdgeData::new(10, 2, 0.2)
    }

    fn bits(g: &ClickGraph, q: &str, a: &str) -> u64 {
        let e = g
            .edge(g.query_by_name(q).unwrap(), g.ad_by_name(a).unwrap())
            .unwrap();
        e.expected_click_rate.to_bits()
    }

    #[test]
    fn accumulates_within_a_bucket() {
        let mut w = SlidingWindowGraph::new(3);
        w.observe("camera", "hp.com", click());
        w.observe("camera", "hp.com", click());
        let g = w.freeze();
        let q = g.query_by_name("camera").unwrap();
        let a = g.ad_by_name("hp.com").unwrap();
        let e = g.edge(q, a).unwrap();
        assert_eq!(e.impressions, 20);
        assert_eq!(e.clicks, 4);
    }

    #[test]
    fn window_retires_old_buckets() {
        let mut w = SlidingWindowGraph::new(2);
        w.observe("old", "ad1", click());
        w.advance(); // bucket 1
        w.observe("mid", "ad2", click());
        w.advance(); // bucket 2: "old" bucket retires
        w.observe("new", "ad3", click());

        let g = w.freeze();
        let old = g.query_by_name("old").unwrap();
        assert_eq!(g.query_degree(old), 0, "retired edges must vanish");
        let mid = g.query_by_name("mid").unwrap();
        assert_eq!(g.query_degree(mid), 1);
        let new = g.query_by_name("new").unwrap();
        assert_eq!(g.query_degree(new), 1);
    }

    #[test]
    fn ids_are_stable_across_freezes() {
        let mut w = SlidingWindowGraph::new(2);
        let (q0, _) = w.observe("camera", "hp.com", click());
        let snap1 = w.freeze();
        w.advance();
        w.observe("flower", "teleflora.com", click());
        let snap2 = w.freeze();
        assert_eq!(snap1.query_by_name("camera"), Some(q0));
        assert_eq!(snap2.query_by_name("camera"), Some(q0));
        assert_eq!(w.query_id("camera"), Some(q0));
    }

    #[test]
    fn same_edge_across_buckets_merges_in_freeze() {
        let mut w = SlidingWindowGraph::new(3);
        w.observe("q", "ad", click());
        w.advance();
        w.observe("q", "ad", click());
        let g = w.freeze();
        let e = g
            .edge(g.query_by_name("q").unwrap(), g.ad_by_name("ad").unwrap())
            .unwrap();
        assert_eq!(e.impressions, 20);
        assert_eq!(e.clicks, 4);
    }

    /// The reason buckets hold raw events: `EdgeData::merge` is not
    /// bit-associative, so the old per-bucket pre-accumulation (fold each
    /// bucket, then merge bucket partials) diverged from a scratch replay
    /// in the last ulp. These constants are a found counterexample — under
    /// the old freeze they produce a different ECR bit pattern than the
    /// scratch build below, so this test fails against that implementation.
    #[test]
    fn freeze_bit_identical_to_scratch_build_of_surviving_events() {
        let events = [
            (0u64, 19, 5, 0.93),
            (0, 16, 4, 0.81),
            (1, 17, 3, 0.40),
            (1, 2, 1, 0.48),
        ];
        let mut w = SlidingWindowGraph::new(4);
        for &(epoch, impr, clicks, ecr) in &events {
            w.advance_to(epoch);
            w.observe("q", "ad", EdgeData::new(impr, clicks, ecr));
        }
        let frozen = w.freeze();

        // Scratch build: same universe, same events, arrival order.
        let mut b = w.universe_builder();
        for &(_, impr, clicks, ecr) in &events {
            b.add_edge(
                w.query_id("q").unwrap(),
                w.ad_id("ad").unwrap(),
                EdgeData::new(impr, clicks, ecr),
            );
        }
        let scratch = b.build();

        assert_eq!(frozen.n_queries(), scratch.n_queries());
        assert_eq!(frozen.n_ads(), scratch.n_ads());
        assert_eq!(frozen.n_edges(), scratch.n_edges());
        for (q, a, e) in frozen.edges() {
            let s = scratch.edge(q, a).unwrap();
            assert_eq!(e.impressions, s.impressions);
            assert_eq!(e.clicks, s.clicks);
            assert_eq!(
                e.expected_click_rate.to_bits(),
                s.expected_click_rate.to_bits(),
                "ECR must match bitwise, not just approximately"
            );
        }
    }

    #[test]
    fn advance_reports_retired_endpoints() {
        let mut w = SlidingWindowGraph::new(1);
        let (q1, a1) = w.observe("q1", "a1", click());
        let (q2, a2) = w.observe("q2", "a2", click());
        w.observe("q1", "a1", click()); // duplicate: deduped in the report
        let retired = w.advance();
        assert_eq!(retired, vec![(q1, a1), (q2, a2)]);
        // Nothing left to retire.
        assert_eq!(w.advance(), vec![]);
    }

    #[test]
    fn advance_to_jumps_and_tolerates_stale_epochs() {
        let mut w = SlidingWindowGraph::new(2);
        let (q, a) = w.observe("q", "a", click());
        let retired = w.advance_to(5);
        assert_eq!(w.epoch(), 5);
        assert_eq!(retired, vec![(q, a)]);
        assert!(w.advance_to(3).is_empty(), "stale epoch mark is a no-op");
        assert_eq!(w.epoch(), 5);
    }

    #[test]
    fn decay_downweights_old_evidence_within_an_edge() {
        // One edge, equal-impression observations two epochs apart with
        // different ECRs: the recency-weighted average sits closer to the
        // fresh observation than the plain impression-weighted average.
        let mut w = SlidingWindowGraph::new(8).with_decay(0.5);
        w.observe("q", "ad", EdgeData::new(10, 5, 0.8));
        w.advance();
        w.advance();
        w.observe("q", "ad", EdgeData::new(10, 5, 0.2));
        let g = w.freeze();
        let e = g
            .edge(g.query_by_name("q").unwrap(), g.ad_by_name("ad").unwrap())
            .unwrap();
        // Weights: old λ²·10 = 2.5, new 10 → (2.5·0.8 + 10·0.2) / 12.5.
        assert!((e.expected_click_rate - 0.32).abs() < 1e-12);
        assert!(e.expected_click_rate < 0.5, "must sit below the plain mean");
        // Counts stay undecayed.
        assert_eq!(e.impressions, 20);
        assert_eq!(e.clicks, 10);
    }

    #[test]
    fn decay_is_monotone_in_the_age_gap() {
        // Fixed old (high-ECR) and fresh (low-ECR) observations on one
        // edge: as the epoch gap between them grows, the old evidence
        // counts for less and the mixed ECR falls toward the fresh value.
        let mut last = f64::INFINITY;
        for gap in 1..6 {
            let mut w = SlidingWindowGraph::new(16).with_decay(0.7);
            w.observe("q", "ad", EdgeData::new(10, 4, 0.9));
            for _ in 0..gap {
                w.advance();
            }
            w.observe("q", "ad", EdgeData::new(10, 4, 0.1));
            let g = w.freeze();
            let ecr = g
                .edge(g.query_by_name("q").unwrap(), g.ad_by_name("ad").unwrap())
                .unwrap()
                .expected_click_rate;
            assert!(ecr < last, "gap {gap}: {ecr} not below {last}");
            assert!(ecr > 0.1, "the old evidence still contributes");
            last = ecr;
        }
    }

    #[test]
    fn decay_untouched_edges_are_bit_stable_across_advances() {
        // The incremental-refresh soundness property: advancing the window
        // without touching an edge (and without retiring its events) must
        // leave its decayed ECR bit-identical — ages are anchored to the
        // edge's own newest event, not the current epoch.
        let mut w = SlidingWindowGraph::new(32).with_decay(0.6);
        w.observe("q", "ad", EdgeData::new(19, 5, 0.93));
        w.advance();
        w.observe("q", "ad", EdgeData::new(17, 3, 0.40));
        let before = bits(&w.freeze(), "q", "ad");
        w.advance();
        w.observe("other", "ad2", click()); // unrelated traffic
        w.advance();
        let after = bits(&w.freeze(), "q", "ad");
        assert_eq!(before, after, "aging alone must not change the ECR bits");
    }

    #[test]
    fn decay_one_is_the_exact_replay_path() {
        let build = |decay: f64| {
            let mut w = SlidingWindowGraph::new(4).with_decay(decay);
            w.observe("q", "ad", EdgeData::new(19, 5, 0.93));
            w.advance();
            w.observe("q", "ad", EdgeData::new(17, 3, 0.40));
            w.freeze()
        };
        let (a, b) = (build(1.0), build(1.0));
        assert_eq!(bits(&a, "q", "ad"), bits(&b, "q", "ad"));
        // And λ=1 through the decayed fold would differ in association;
        // the dispatch guarantees we never take that path.
        let plain = {
            let mut w = SlidingWindowGraph::new(4);
            w.observe("q", "ad", EdgeData::new(19, 5, 0.93));
            w.advance();
            w.observe("q", "ad", EdgeData::new(17, 3, 0.40));
            w.freeze()
        };
        assert_eq!(bits(&a, "q", "ad"), bits(&plain, "q", "ad"));
    }

    #[test]
    fn decay_zero_impression_events_fall_back_to_weighted_mean() {
        let mut w = SlidingWindowGraph::new(4).with_decay(0.5);
        w.observe("q", "ad", EdgeData::new(0, 0, 0.8));
        w.advance();
        w.observe("q", "ad", EdgeData::new(0, 0, 0.4));
        let g = w.freeze();
        let e = g
            .edge(g.query_by_name("q").unwrap(), g.ad_by_name("ad").unwrap())
            .unwrap();
        // λ-weighted mean: (0.5·0.8 + 1·0.4) / (0.5 + 1)
        assert!((e.expected_click_rate - (0.5 * 0.8 + 0.4) / 1.5).abs() < 1e-12);
        assert_eq!(e.impressions, 0);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1]")]
    fn decay_out_of_range_rejected() {
        let _ = SlidingWindowGraph::new(2).with_decay(0.0);
    }

    #[test]
    fn epoch_counts_advances() {
        let mut w = SlidingWindowGraph::new(14);
        assert_eq!(w.epoch(), 0);
        for _ in 0..5 {
            w.advance();
        }
        assert_eq!(w.epoch(), 5);
        assert_eq!(w.buckets_held(), 6);
        for _ in 0..20 {
            w.advance();
        }
        assert_eq!(w.buckets_held(), 14);
    }

    #[test]
    fn observe_ids_requires_interned_ids() {
        let mut w = SlidingWindowGraph::new(2);
        let (q, a) = w.observe("q", "ad", click());
        w.observe_ids(q, a, click());
        let g = w.freeze();
        assert_eq!(g.edge(q, a).unwrap().clicks, 4);
    }

    #[test]
    #[should_panic(expected = "interners")]
    fn observe_ids_rejects_foreign_ids() {
        let mut w = SlidingWindowGraph::new(2);
        w.observe_ids(QueryId(99), AdId(0), click());
    }

    #[test]
    fn two_week_simulation_end_to_end() {
        // 14 daily buckets over 20 days: only the last 14 days survive.
        let mut w = SlidingWindowGraph::new(14);
        for day in 0..20u64 {
            w.observe("q", &format!("ad-day{day}"), click());
            if day < 19 {
                w.advance();
            }
        }
        let g = w.freeze();
        let q = g.query_by_name("q").unwrap();
        assert_eq!(g.query_degree(q), 14, "exactly the last 14 days of edges");
        // The earliest retired day's ad is isolated.
        let ad0 = g.ad_by_name("ad-day0").unwrap();
        assert_eq!(g.ad_degree(ad0), 0);
        // The newest day's ad is connected.
        let ad19 = g.ad_by_name("ad-day19").unwrap();
        assert_eq!(g.ad_degree(ad19), 1);
    }
}
