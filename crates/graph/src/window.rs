//! Sliding-window click-graph accumulation.
//!
//! §2 defines the click graph "for a specific time period"; the evaluation
//! uses "a two-weeks click graph" that a production back-end maintains as a
//! rolling window: new click/impression events arrive continuously, and
//! buckets older than the window retire. [`SlidingWindowGraph`] implements
//! exactly that: per-bucket (e.g. per-day) edge accumulators, `advance()` to
//! rotate out the oldest bucket, and `snapshot()` to freeze the current
//! window into an immutable [`ClickGraph`] for the front-end to score.
//!
//! Names are interned once in a shared interner so node ids are stable
//! across snapshots — a query keeps its id for its entire lifetime, which
//! lets downstream caches (score matrices, rewrite lists) be diffed across
//! windows.

use crate::builder::ClickGraphBuilder;
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use crate::ids::{AdId, QueryId};
use crate::interner::Interner;
use simrankpp_util::FxHashMap;
use std::collections::VecDeque;

/// A rolling multi-bucket click-graph accumulator.
#[derive(Debug, Clone)]
pub struct SlidingWindowGraph {
    /// Window length in buckets (e.g. 14 for two weeks of daily buckets).
    window: usize,
    /// Oldest → newest per-bucket edge accumulators.
    buckets: VecDeque<FxHashMap<(u32, u32), EdgeData>>,
    query_names: Interner,
    ad_names: Interner,
    /// Number of `advance()` calls so far (the current bucket's index).
    epoch: u64,
}

impl SlidingWindowGraph {
    /// Creates a window of `window` buckets (≥ 1), starting with one empty
    /// current bucket.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one bucket");
        let mut buckets = VecDeque::with_capacity(window);
        buckets.push_back(FxHashMap::default());
        SlidingWindowGraph {
            window,
            buckets,
            query_names: Interner::new(),
            ad_names: Interner::new(),
            epoch: 0,
        }
    }

    /// The configured window length in buckets.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The current bucket's index (starts at 0, +1 per [`Self::advance`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of buckets currently held (≤ window).
    pub fn buckets_held(&self) -> usize {
        self.buckets.len()
    }

    /// Records an observation of `(query, ad)` in the current bucket.
    /// Returns the stable ids.
    pub fn observe(&mut self, query: &str, ad: &str, data: EdgeData) -> (QueryId, AdId) {
        let q = QueryId(self.query_names.intern(query));
        let a = AdId(self.ad_names.intern(ad));
        self.buckets
            .back_mut()
            .expect("always at least one bucket")
            .entry((q.0, a.0))
            .and_modify(|e| e.merge(&data))
            .or_insert(data);
        (q, a)
    }

    /// Records by stable ids (for callers that interned up front).
    pub fn observe_ids(&mut self, q: QueryId, a: AdId, data: EdgeData) {
        assert!(
            (q.0 as usize) < self.query_names.len() && (a.0 as usize) < self.ad_names.len(),
            "ids must come from this window's interners"
        );
        self.buckets
            .back_mut()
            .expect("always at least one bucket")
            .entry((q.0, a.0))
            .and_modify(|e| e.merge(&data))
            .or_insert(data);
    }

    /// Closes the current bucket and opens a new one; the oldest bucket
    /// retires once more than `window` are held. Ids remain stable.
    pub fn advance(&mut self) {
        self.buckets.push_back(FxHashMap::default());
        while self.buckets.len() > self.window {
            self.buckets.pop_front();
        }
        self.epoch += 1;
    }

    /// Freezes the current window into an immutable [`ClickGraph`].
    ///
    /// Node ids in the snapshot equal the stable interned ids (every query
    /// and ad ever observed keeps its id, even if all its edges have
    /// retired — it simply appears isolated).
    pub fn snapshot(&self) -> ClickGraph {
        let mut b = ClickGraphBuilder::new();
        for (_, name) in self.query_names.iter() {
            b.intern_query(name);
        }
        for (_, name) in self.ad_names.iter() {
            b.intern_ad(name);
        }
        for bucket in &self.buckets {
            for (&(q, a), data) in bucket {
                b.add_edge(QueryId(q), AdId(a), *data);
            }
        }
        let g = b.build();
        debug_assert!(g.validate().is_ok());
        g
    }

    /// Looks up a query's stable id without inserting.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.query_names.get(name).map(QueryId)
    }

    /// Looks up an ad's stable id without inserting.
    pub fn ad_id(&self, name: &str) -> Option<AdId> {
        self.ad_names.get(name).map(AdId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn click() -> EdgeData {
        EdgeData::new(10, 2, 0.2)
    }

    #[test]
    fn accumulates_within_a_bucket() {
        let mut w = SlidingWindowGraph::new(3);
        w.observe("camera", "hp.com", click());
        w.observe("camera", "hp.com", click());
        let g = w.snapshot();
        let q = g.query_by_name("camera").unwrap();
        let a = g.ad_by_name("hp.com").unwrap();
        let e = g.edge(q, a).unwrap();
        assert_eq!(e.impressions, 20);
        assert_eq!(e.clicks, 4);
    }

    #[test]
    fn window_retires_old_buckets() {
        let mut w = SlidingWindowGraph::new(2);
        w.observe("old", "ad1", click());
        w.advance(); // bucket 1
        w.observe("mid", "ad2", click());
        w.advance(); // bucket 2: "old" bucket retires
        w.observe("new", "ad3", click());

        let g = w.snapshot();
        let old = g.query_by_name("old").unwrap();
        assert_eq!(g.query_degree(old), 0, "retired edges must vanish");
        let mid = g.query_by_name("mid").unwrap();
        assert_eq!(g.query_degree(mid), 1);
        let new = g.query_by_name("new").unwrap();
        assert_eq!(g.query_degree(new), 1);
    }

    #[test]
    fn ids_are_stable_across_snapshots() {
        let mut w = SlidingWindowGraph::new(2);
        let (q0, _) = w.observe("camera", "hp.com", click());
        let snap1 = w.snapshot();
        w.advance();
        w.observe("flower", "teleflora.com", click());
        let snap2 = w.snapshot();
        assert_eq!(snap1.query_by_name("camera"), Some(q0));
        assert_eq!(snap2.query_by_name("camera"), Some(q0));
        assert_eq!(w.query_id("camera"), Some(q0));
    }

    #[test]
    fn same_edge_across_buckets_merges_in_snapshot() {
        let mut w = SlidingWindowGraph::new(3);
        w.observe("q", "ad", click());
        w.advance();
        w.observe("q", "ad", click());
        let g = w.snapshot();
        let e = g
            .edge(g.query_by_name("q").unwrap(), g.ad_by_name("ad").unwrap())
            .unwrap();
        assert_eq!(e.impressions, 20);
        assert_eq!(e.clicks, 4);
    }

    #[test]
    fn epoch_counts_advances() {
        let mut w = SlidingWindowGraph::new(14);
        assert_eq!(w.epoch(), 0);
        for _ in 0..5 {
            w.advance();
        }
        assert_eq!(w.epoch(), 5);
        assert_eq!(w.buckets_held(), 6);
        for _ in 0..20 {
            w.advance();
        }
        assert_eq!(w.buckets_held(), 14);
    }

    #[test]
    fn observe_ids_requires_interned_ids() {
        let mut w = SlidingWindowGraph::new(2);
        let (q, a) = w.observe("q", "ad", click());
        w.observe_ids(q, a, click());
        let g = w.snapshot();
        assert_eq!(g.edge(q, a).unwrap().clicks, 4);
    }

    #[test]
    #[should_panic(expected = "interners")]
    fn observe_ids_rejects_foreign_ids() {
        let mut w = SlidingWindowGraph::new(2);
        w.observe_ids(QueryId(99), AdId(0), click());
    }

    #[test]
    fn two_week_simulation_end_to_end() {
        // 14 daily buckets over 20 days: only the last 14 days survive.
        let mut w = SlidingWindowGraph::new(14);
        for day in 0..20u64 {
            w.observe("q", &format!("ad-day{day}"), click());
            if day < 19 {
                w.advance();
            }
        }
        let g = w.snapshot();
        let q = g.query_by_name("q").unwrap();
        assert_eq!(g.query_degree(q), 14, "exactly the last 14 days of edges");
        // The earliest retired day's ad is isolated.
        let ad0 = g.ad_by_name("ad-day0").unwrap();
        assert_eq!(g.ad_degree(ad0), 0);
        // The newest day's ad is connected.
        let ad19 = g.ad_by_name("ad-day19").unwrap();
        assert_eq!(g.ad_degree(ad19), 1);
    }
}
