//! Incremental click-graph updates.
//!
//! The click graph is not static: new (query, ad) clicks arrive continuously
//! while a production rewriter serves traffic. A [`GraphDelta`] is one batch
//! of edge mutations — inserts / weight accumulations ([`DeltaOp::Upsert`],
//! which merges like [`ClickGraphBuilder::add_edge`] does for duplicate
//! edges) and removals ([`DeltaOp::Remove`]) — applied to an immutable
//! [`ClickGraph`] to produce the next graph generation.
//!
//! The payoff is [`GraphDelta::dirty_components`]: SimRank scores are
//! block-diagonal over connected components (see [`crate::sharding`]), and a
//! delta can only change scores inside the components its edge endpoints
//! touch. `dirty_components` labels the **new** graph's components and marks
//! the minimal dirty set:
//!
//! * an **insert** marks the component now containing both endpoints — if
//!   the edge bridged two old components, the *merged* component is one
//!   dirty component and both old blocks are recomputed;
//! * a **removal** marks the component(s) of both (still existing —
//!   removal never deletes nodes) endpoints — if the edge was a bridge, the
//!   component *split* and each half is dirty, which conservatively covers
//!   every score the split could have changed;
//! * a component containing **no** delta endpoint keeps its exact node and
//!   edge set (any edge mutation would have marked its endpoints, and a
//!   merge into it would require an endpoint inside it), so its score block
//!   is provably unchanged and can be reused verbatim.
//!
//! The engine layer (`simrankpp-core::engine::run_incremental`) recomputes
//! only the dirty components and stitches the clean blocks from the previous
//! score matrix; the serving layer refreshes only dirty queries' index rows.
//!
//! Deltas travel as TSV ([`read_delta_tsv`] / [`write_delta_tsv`]): one op
//! per line, `+ \t query \t ad \t impressions \t clicks \t ecr` for upserts
//! and `- \t query \t ad` for removals, `#` comments and blank lines
//! skipped. Named ops resolve against a named graph via [`apply_named`],
//! interning unseen names as fresh dense ids.
//!
//! Streaming ingestion extends the same wire format with a timestamp: a
//! **click log** ([`read_click_log`] / [`write_click_log`]) is an
//! append-only TSV whose upsert lines carry a leading epoch column
//! (`+ \t epoch \t query \t ad \t impressions \t clicks \t ecr`) and whose
//! `@ \t epoch` marker lines declare every earlier epoch complete. A click
//! log carries no removals — expiry is the reader's job (the sliding window
//! in [`crate::window`] retires whole epochs), which keeps the log
//! append-only and replayable from any offset.

use crate::builder::ClickGraphBuilder;
use crate::components::{connected_components, Components};
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use crate::ids::{AdId, QueryId};
use std::io::{self, BufRead, BufWriter, Write};

/// One edge mutation, by dense id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp {
    /// Insert the edge, or accumulate onto it if present
    /// (via [`EdgeData::merge`] — the duplicate-edge semantics of
    /// [`ClickGraphBuilder::add_edge`]). Ids beyond the current node counts
    /// grow the graph.
    Upsert {
        /// Query endpoint.
        query: QueryId,
        /// Ad endpoint.
        ad: AdId,
        /// Observation window to merge onto the edge.
        data: EdgeData,
    },
    /// Remove the edge entirely (a no-op if absent). The endpoints remain
    /// as (possibly isolated) nodes: ids never shift.
    Remove {
        /// Query endpoint.
        query: QueryId,
        /// Ad endpoint.
        ad: AdId,
    },
}

impl DeltaOp {
    /// The op's `(query, ad)` endpoints.
    pub fn endpoints(&self) -> (QueryId, AdId) {
        match *self {
            DeltaOp::Upsert { query, ad, .. } | DeltaOp::Remove { query, ad } => (query, ad),
        }
    }
}

/// An ordered batch of edge mutations against one [`ClickGraph`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an upsert (insert-or-accumulate) op.
    pub fn upsert(&mut self, query: QueryId, ad: AdId, data: EdgeData) -> &mut Self {
        self.ops.push(DeltaOp::Upsert { query, ad, data });
        self
    }

    /// Appends a removal op.
    pub fn remove(&mut self, query: QueryId, ad: AdId) -> &mut Self {
        self.ops.push(DeltaOp::Remove { query, ad });
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the delta holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the delta to `g`, producing the next graph generation.
    ///
    /// Ops replay in order on a thawed builder ([`ClickGraphBuilder::from_graph`]),
    /// so an upsert after a removal of the same edge re-creates it with only
    /// the upsert's data, and an insert-only delta is equivalent to building
    /// from the concatenation of `g`'s edge list and the delta's edges
    /// (duplicate edges accumulate identically either way). Node ids are
    /// stable: existing ids keep their names and neighbors, new ids extend
    /// the id space.
    pub fn apply(&self, g: &ClickGraph) -> ClickGraph {
        let mut b = ClickGraphBuilder::from_graph(g);
        for op in &self.ops {
            match *op {
                DeltaOp::Upsert { query, ad, data } => b.add_edge(query, ad, data),
                DeltaOp::Remove { query, ad } => {
                    b.remove_edge(query, ad);
                }
            }
        }
        b.build()
    }

    /// Maps the delta to the minimal set of affected components of the
    /// **already-updated** graph (`new_graph` must be `self.apply(old)`).
    ///
    /// A component is dirty iff it contains an endpoint of any op. This is
    /// sound — every score change lies in a dirty component, because scores
    /// only depend on a component's own edges and every mutated edge's
    /// endpoints are marked — and it handles merges (the bridged component
    /// contains both endpoints) and splits (each half contains one endpoint
    /// of the removed edge) by construction. Removal endpoints whose ids
    /// exceed the new graph's dimensions (a removal of a never-seen edge)
    /// are ignored.
    pub fn dirty_components(&self, new_graph: &ClickGraph) -> DirtyComponents {
        dirty_for_endpoints(new_graph, self.ops.iter().map(|op| op.endpoints()))
    }

    /// The edge-level difference `new − old`, as a delta whose
    /// [`GraphDelta::apply`] on `old` reproduces `new`'s exact edge set
    /// (data compared bitwise, so even an ECR recomputed to the same value
    /// through a different fp path counts as a change). Ids are compared
    /// positionally — both graphs must share an id space, as two window
    /// freezes over the same interners do. Nodes that appear in `new`
    /// without any incident edge are not expressible as edge ops and are
    /// ignored; callers that need them (the window keeps every interned
    /// name) already share the node universe.
    ///
    /// This is the oracle for endpoint-tracked dirtiness: the cheap
    /// streaming path marks components from observed/retired event
    /// endpoints, and `diff(old, new).dirty_components(new)` must mark a
    /// subset of them (every changed edge came from some event).
    pub fn diff(old: &ClickGraph, new: &ClickGraph) -> GraphDelta {
        let bit_eq = |a: &EdgeData, b: &EdgeData| {
            a.impressions == b.impressions
                && a.clicks == b.clicks
                && a.expected_click_rate.to_bits() == b.expected_click_rate.to_bits()
        };
        let mut d = GraphDelta::new();
        for (q, a, e) in new.edges() {
            let before = (q.index() < old.n_queries() && a.index() < old.n_ads())
                .then(|| old.edge(q, a))
                .flatten();
            match before {
                Some(prev) if bit_eq(prev, e) => {}
                Some(_) => {
                    // Replace: wipe the accumulated history, then set the
                    // new data verbatim (upsert alone would merge onto it).
                    d.remove(q, a).upsert(q, a, *e);
                }
                None => {
                    d.upsert(q, a, *e);
                }
            }
        }
        for (q, a, _) in old.edges() {
            let gone =
                q.index() >= new.n_queries() || a.index() >= new.n_ads() || !new.has_edge(q, a);
            if gone {
                d.remove(q, a);
            }
        }
        d
    }
}

/// Marks the components of `new_graph` containing any of the given
/// `(query, ad)` endpoints as dirty — the same labeling
/// [`GraphDelta::dirty_components`] computes from a delta's ops, but driven
/// by a raw endpoint stream. The streaming ingest path uses this with the
/// endpoints of events observed since the last refresh plus the endpoints
/// of events the window retired, which covers every edge the epoch
/// boundary could have changed. Endpoints beyond the graph's dimensions
/// are ignored.
pub fn dirty_for_endpoints<I>(new_graph: &ClickGraph, endpoints: I) -> DirtyComponents
where
    I: IntoIterator<Item = (QueryId, AdId)>,
{
    let components = connected_components(new_graph);
    let mut dirty = vec![false; components.count];
    for (q, a) in endpoints {
        if q.index() < new_graph.n_queries() {
            dirty[components.query_label[q.index()] as usize] = true;
        }
        if a.index() < new_graph.n_ads() {
            dirty[components.ad_label[a.index()] as usize] = true;
        }
    }
    let n_dirty = dirty.iter().filter(|&&d| d).count();
    DirtyComponents {
        components,
        dirty,
        n_dirty,
    }
}

/// The dirty/clean component labeling a delta induces on the updated graph.
#[derive(Debug, Clone)]
pub struct DirtyComponents {
    /// Component labeling of the **new** (post-delta) graph.
    pub components: Components,
    dirty: Vec<bool>,
    n_dirty: usize,
}

impl DirtyComponents {
    /// Total number of components in the new graph.
    pub fn n_components(&self) -> usize {
        self.components.count
    }

    /// Number of dirty components.
    pub fn n_dirty(&self) -> usize {
        self.n_dirty
    }

    /// Number of clean (score-block-reusable) components.
    pub fn n_clean(&self) -> usize {
        self.components.count - self.n_dirty
    }

    /// Whether component `id` is dirty.
    #[inline]
    pub fn is_dirty(&self, id: u32) -> bool {
        self.dirty[id as usize]
    }

    /// Whether query `q`'s component is dirty.
    #[inline]
    pub fn query_dirty(&self, q: QueryId) -> bool {
        self.dirty[self.components.query_label[q.index()] as usize]
    }

    /// Whether ad `a`'s component is dirty.
    #[inline]
    pub fn ad_dirty(&self, a: AdId) -> bool {
        self.dirty[self.components.ad_label[a.index()] as usize]
    }

    /// Number of queries living in dirty components.
    pub fn dirty_query_count(&self) -> usize {
        self.components
            .query_label
            .iter()
            .filter(|&&l| self.dirty[l as usize])
            .count()
    }
}

/// One edge mutation by display name — the wire form of a delta TSV line.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedOp {
    /// Insert-or-accumulate, interning unseen names.
    Upsert {
        /// Query display name.
        query: String,
        /// Ad display name.
        ad: String,
        /// Observation window to merge onto the edge.
        data: EdgeData,
    },
    /// Remove the named edge. Both names must already exist in the graph.
    Remove {
        /// Query display name.
        query: String,
        /// Ad display name.
        ad: String,
    },
}

/// Applies a batch of named ops to a **named** graph, returning the next
/// graph generation together with the id-resolved [`GraphDelta`] (for
/// [`GraphDelta::dirty_components`] against the returned graph).
///
/// Upserts intern unseen names as fresh dense ids, in first-appearance
/// order. Removals must reference names the graph (or an earlier upsert in
/// the same batch) knows — a typo'd removal is an error, not a silent no-op.
pub fn apply_named(g: &ClickGraph, ops: &[NamedOp]) -> Result<(ClickGraph, GraphDelta), String> {
    if g.query_interner().is_none() || g.ad_interner().is_none() {
        return Err("named deltas need a graph with display names on both sides".into());
    }
    let mut b = ClickGraphBuilder::from_graph(g);
    let mut delta = GraphDelta::new();
    for op in ops {
        match op {
            NamedOp::Upsert { query, ad, data } => {
                let q = b.intern_query(query);
                let a = b.intern_ad(ad);
                b.add_edge(q, a, *data);
                delta.upsert(q, a, *data);
            }
            NamedOp::Remove { query, ad } => {
                let q = b
                    .query_id(query)
                    .ok_or_else(|| format!("remove references unknown query {query:?}"))?;
                let a = b
                    .ad_id(ad)
                    .ok_or_else(|| format!("remove references unknown ad {ad:?}"))?;
                b.remove_edge(q, a);
                delta.remove(q, a);
            }
        }
    }
    Ok((b.build(), delta))
}

/// Reads a delta TSV: `+ \t query \t ad \t impressions \t clicks \t ecr`
/// per upsert, `- \t query \t ad` per removal; blank lines and `#` comments
/// skipped. The leading op field makes the format self-describing and keeps
/// names free to start with `-`.
pub fn read_delta_tsv<R: BufRead>(input: R) -> io::Result<Vec<NamedOp>> {
    let mut ops = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('\t').collect();
        match fields.as_slice() {
            ["+", q, a, impr, clicks, ecr] => {
                let impressions: u64 = impr
                    .parse()
                    .map_err(|_| bad_line(line_no, &format!("bad impressions field {impr:?}")))?;
                let clicks: u64 = clicks
                    .parse()
                    .map_err(|_| bad_line(line_no, &format!("bad clicks field {clicks:?}")))?;
                let ecr: f64 = ecr
                    .parse()
                    .map_err(|_| bad_line(line_no, &format!("bad ECR field {ecr:?}")))?;
                if clicks > impressions || !ecr.is_finite() || ecr < 0.0 {
                    return Err(bad_line(line_no, "edge data violates invariants"));
                }
                ops.push(NamedOp::Upsert {
                    query: (*q).to_owned(),
                    ad: (*a).to_owned(),
                    data: EdgeData {
                        impressions,
                        clicks,
                        expected_click_rate: ecr,
                    },
                });
            }
            ["-", q, a] => ops.push(NamedOp::Remove {
                query: (*q).to_owned(),
                ad: (*a).to_owned(),
            }),
            [op, ..] if *op != "+" && *op != "-" => {
                return Err(bad_line(
                    line_no,
                    &format!("unknown op {op:?} (expected '+' or '-')"),
                ))
            }
            _ => {
                return Err(bad_line(
                    line_no,
                    "wrong field count (upsert: 6 fields, removal: 3)",
                ))
            }
        }
    }
    Ok(ops)
}

/// Writes named ops in the [`read_delta_tsv`] format. Names containing a
/// tab or newline are rejected — they would shift every following field.
pub fn write_delta_tsv<W: Write>(ops: &[NamedOp], out: W) -> io::Result<()> {
    let check = |field: &str, name: &str| -> io::Result<()> {
        if name.contains(['\t', '\n', '\r']) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{field} name {name:?} contains a tab or newline"),
            ));
        }
        Ok(())
    };
    let mut w = BufWriter::new(out);
    for op in ops {
        match op {
            NamedOp::Upsert { query, ad, data } => {
                check("query", query)?;
                check("ad", ad)?;
                writeln!(
                    w,
                    "+\t{query}\t{ad}\t{}\t{}\t{}",
                    data.impressions, data.clicks, data.expected_click_rate
                )?;
            }
            NamedOp::Remove { query, ad } => {
                check("query", query)?;
                check("ad", ad)?;
                writeln!(w, "-\t{query}\t{ad}")?;
            }
        }
    }
    w.flush()
}

fn bad_line(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("delta TSV line {line_no}: {msg}"),
    )
}

/// One line of an append-only click log — the delta TSV upsert shape with a
/// leading epoch column, plus epoch-advance markers.
#[derive(Debug, Clone, PartialEq)]
pub enum ClickLogRecord {
    /// `+ \t epoch \t query \t ad \t impressions \t clicks \t ecr`: one
    /// observation window to accumulate onto the named edge, stamped with
    /// the epoch it belongs to.
    Event {
        /// Epoch the observation belongs to.
        epoch: u64,
        /// Query display name.
        query: String,
        /// Ad display name.
        ad: String,
        /// Observation window to merge onto the edge.
        data: EdgeData,
    },
    /// `@ \t epoch`: every epoch **before** `epoch` is complete; the writer
    /// has moved on. Readers batching events into epochs treat this as the
    /// signal to retire expired buckets and refresh — without it, a reader
    /// could not distinguish "epoch still filling" from "epoch done but
    /// quiet".
    EpochMark {
        /// The epoch the writer has advanced to.
        epoch: u64,
    },
}

/// Parses one click-log line. Returns `Ok(None)` for blank lines and `#`
/// comments. `line_no` is 1-based, for error messages. Tail-following
/// readers call this per line as the file grows; [`read_click_log`] wraps
/// it for whole files.
pub fn parse_click_log_line(line: &str, line_no: usize) -> io::Result<Option<ClickLogRecord>> {
    let trimmed = line.trim_end_matches(['\n', '\r']);
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("click log line {line_no}: {msg}"),
        )
    };
    let fields: Vec<&str> = trimmed.split('\t').collect();
    match fields.as_slice() {
        ["+", epoch, q, a, impr, clicks, ecr] => {
            let epoch: u64 = epoch
                .parse()
                .map_err(|_| bad(&format!("bad epoch field {epoch:?}")))?;
            let impressions: u64 = impr
                .parse()
                .map_err(|_| bad(&format!("bad impressions field {impr:?}")))?;
            let clicks: u64 = clicks
                .parse()
                .map_err(|_| bad(&format!("bad clicks field {clicks:?}")))?;
            let ecr: f64 = ecr
                .parse()
                .map_err(|_| bad(&format!("bad ECR field {ecr:?}")))?;
            if clicks > impressions || !ecr.is_finite() || ecr < 0.0 {
                return Err(bad("edge data violates invariants"));
            }
            Ok(Some(ClickLogRecord::Event {
                epoch,
                query: (*q).to_owned(),
                ad: (*a).to_owned(),
                data: EdgeData {
                    impressions,
                    clicks,
                    expected_click_rate: ecr,
                },
            }))
        }
        ["@", epoch] => {
            let epoch: u64 = epoch
                .parse()
                .map_err(|_| bad(&format!("bad epoch field {epoch:?}")))?;
            Ok(Some(ClickLogRecord::EpochMark { epoch }))
        }
        [op, ..] if *op != "+" && *op != "@" => {
            Err(bad(&format!("unknown op {op:?} (expected '+' or '@')")))
        }
        _ => Err(bad("wrong field count (event: 7 fields, epoch mark: 2)")),
    }
}

/// Reads a whole click log: one [`ClickLogRecord`] per non-blank,
/// non-comment line, in file order.
pub fn read_click_log<R: BufRead>(input: R) -> io::Result<Vec<ClickLogRecord>> {
    let mut records = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(rec) = parse_click_log_line(&line?, i + 1)? {
            records.push(rec);
        }
    }
    Ok(records)
}

/// Writes click-log records in the [`read_click_log`] format. Names
/// containing a tab or newline are rejected — they would shift every
/// following field.
pub fn write_click_log<W: Write>(records: &[ClickLogRecord], out: W) -> io::Result<()> {
    let check = |field: &str, name: &str| -> io::Result<()> {
        if name.contains(['\t', '\n', '\r']) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{field} name {name:?} contains a tab or newline"),
            ));
        }
        Ok(())
    };
    let mut w = BufWriter::new(out);
    for rec in records {
        match rec {
            ClickLogRecord::Event {
                epoch,
                query,
                ad,
                data,
            } => {
                check("query", query)?;
                check("ad", ad)?;
                writeln!(
                    w,
                    "+\t{epoch}\t{query}\t{ad}\t{}\t{}\t{}",
                    data.impressions, data.clicks, data.expected_click_rate
                )?;
            }
            ClickLogRecord::EpochMark { epoch } => writeln!(w, "@\t{epoch}")?,
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3_graph;
    use crate::ids::NodeRef;

    fn fig3_delta_merge() -> GraphDelta {
        // Bridge the flower component into the big one.
        let g = figure3_graph();
        let mut d = GraphDelta::new();
        d.upsert(
            g.query_by_name("flower").unwrap(),
            g.ad_by_name("hp.com").unwrap(),
            EdgeData::from_clicks(1),
        );
        d
    }

    #[test]
    fn upsert_accumulates_like_builder() {
        let g = figure3_graph();
        let camera = g.query_by_name("camera").unwrap();
        let hp = g.ad_by_name("hp.com").unwrap();
        let before = *g.edge(camera, hp).unwrap();
        let mut d = GraphDelta::new();
        d.upsert(camera, hp, EdgeData::from_clicks(3));
        let g2 = d.apply(&g);
        let after = g2.edge(camera, hp).unwrap();
        assert_eq!(after.clicks, before.clicks + 3);
        assert_eq!(g2.n_edges(), g.n_edges());
        g2.validate().unwrap();
    }

    #[test]
    fn removal_keeps_nodes_dense() {
        let g = figure3_graph();
        let flower = g.query_by_name("flower").unwrap();
        let tele = g.ad_by_name("teleflora.com").unwrap();
        let orchids = g.ad_by_name("orchids.com").unwrap();
        let mut d = GraphDelta::new();
        d.remove(flower, tele).remove(flower, orchids);
        let g2 = d.apply(&g);
        assert_eq!(g2.n_queries(), g.n_queries());
        assert_eq!(g2.n_ads(), g.n_ads());
        assert_eq!(g2.n_edges(), g.n_edges() - 2);
        assert_eq!(g2.query_degree(flower), 0);
        assert_eq!(g2.query_name(flower), Some("flower"));
        g2.validate().unwrap();
    }

    #[test]
    fn ops_replay_in_order() {
        let g = figure3_graph();
        let camera = g.query_by_name("camera").unwrap();
        let hp = g.ad_by_name("hp.com").unwrap();
        let mut d = GraphDelta::new();
        d.remove(camera, hp)
            .upsert(camera, hp, EdgeData::from_clicks(9));
        let g2 = d.apply(&g);
        // The removal wiped the accumulated history; the upsert starts fresh.
        assert_eq!(g2.edge(camera, hp).unwrap().clicks, 9);
    }

    #[test]
    fn new_ids_grow_the_graph() {
        let g = figure3_graph();
        let mut d = GraphDelta::new();
        let new_q = QueryId(g.n_queries() as u32);
        let new_a = AdId(g.n_ads() as u32);
        d.upsert(new_q, new_a, EdgeData::from_clicks(2));
        let g2 = d.apply(&g);
        assert_eq!(g2.n_queries(), g.n_queries() + 1);
        assert_eq!(g2.n_ads(), g.n_ads() + 1);
        assert!(g2.has_edge(new_q, new_a));
        g2.validate().unwrap();
    }

    #[test]
    fn empty_delta_reproduces_the_graph_exactly() {
        let g = figure3_graph();
        let g2 = GraphDelta::new().apply(&g);
        assert_eq!(g2.n_queries(), g.n_queries());
        assert_eq!(g2.n_ads(), g.n_ads());
        assert_eq!(g2.n_edges(), g.n_edges());
        for (q, a, e) in g.edges() {
            assert_eq!(g2.edge(q, a), Some(e));
            assert_eq!(g2.query_name(q), g.query_name(q));
        }
    }

    #[test]
    fn dirty_components_marks_insert_merge() {
        // Figure 3 has two components; a flower→hp edge merges them into
        // one, which must be the single dirty component.
        let g = figure3_graph();
        let d = fig3_delta_merge();
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);
        assert_eq!(dirty.n_components(), 1);
        assert_eq!(dirty.n_dirty(), 1);
        assert_eq!(dirty.n_clean(), 0);
        assert!(dirty.query_dirty(g.query_by_name("pc").unwrap()));
        assert!(dirty.query_dirty(g.query_by_name("flower").unwrap()));
    }

    #[test]
    fn dirty_components_marks_both_halves_of_a_split() {
        // Removing flower→teleflora splits {flower, teleflora, orchids}:
        // flower+orchids stay joined, teleflora is orphaned. Both resulting
        // components are dirty; the big component is clean.
        let g = figure3_graph();
        let flower = g.query_by_name("flower").unwrap();
        let tele = g.ad_by_name("teleflora.com").unwrap();
        let mut d = GraphDelta::new();
        d.remove(flower, tele);
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);
        assert_eq!(dirty.n_components(), 3);
        assert_eq!(dirty.n_dirty(), 2);
        assert_eq!(dirty.n_clean(), 1);
        assert!(dirty.query_dirty(flower));
        assert!(dirty.ad_dirty(tele));
        assert!(!dirty.query_dirty(g.query_by_name("camera").unwrap()));
    }

    #[test]
    fn untouched_component_stays_clean() {
        let g = figure3_graph();
        let camera = g.query_by_name("camera").unwrap();
        let hp = g.ad_by_name("hp.com").unwrap();
        let mut d = GraphDelta::new();
        d.upsert(camera, hp, EdgeData::from_clicks(1));
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);
        assert_eq!(dirty.n_components(), 2);
        assert_eq!(dirty.n_dirty(), 1);
        let flower = g.query_by_name("flower").unwrap();
        assert!(!dirty.query_dirty(flower));
        assert!(dirty.query_dirty(camera));
        // The clean component's members and edges are untouched.
        let label = dirty.components.label(NodeRef::Query(flower));
        assert!(!dirty.is_dirty(label));
        assert_eq!(dirty.dirty_query_count(), 4);
    }

    #[test]
    fn apply_named_interns_new_names_and_resolves() {
        let g = figure3_graph();
        let ops = vec![
            NamedOp::Upsert {
                query: "rose".into(),
                ad: "teleflora.com".into(),
                data: EdgeData::from_clicks(2),
            },
            NamedOp::Remove {
                query: "flower".into(),
                ad: "orchids.com".into(),
            },
        ];
        let (g2, delta) = apply_named(&g, &ops).unwrap();
        assert_eq!(delta.len(), 2);
        let rose = g2.query_by_name("rose").unwrap();
        assert_eq!(rose.index(), g.n_queries()); // fresh dense id
        assert!(g2.has_edge(rose, g2.ad_by_name("teleflora.com").unwrap()));
        let flower = g2.query_by_name("flower").unwrap();
        assert!(!g2.has_edge(flower, g2.ad_by_name("orchids.com").unwrap()));
        g2.validate().unwrap();
    }

    #[test]
    fn apply_named_rejects_unknown_removal_and_unnamed_graph() {
        let g = figure3_graph();
        let err = apply_named(
            &g,
            &[NamedOp::Remove {
                query: "no such".into(),
                ad: "hp.com".into(),
            }],
        )
        .unwrap_err();
        assert!(err.contains("unknown query"), "{err}");

        let mut b = ClickGraphBuilder::new();
        b.add_edge(QueryId(0), AdId(0), EdgeData::from_clicks(1));
        let unnamed = b.build();
        assert!(apply_named(&unnamed, &[]).is_err());
    }

    #[test]
    fn delta_tsv_round_trips() {
        let ops = vec![
            NamedOp::Upsert {
                query: "camera".into(),
                ad: "hp.com".into(),
                data: EdgeData::new(10, 4, 0.25),
            },
            NamedOp::Remove {
                query: "flower".into(),
                ad: "teleflora.com".into(),
            },
        ];
        let mut buf = Vec::new();
        write_delta_tsv(&ops, &mut buf).unwrap();
        let parsed = read_delta_tsv(buf.as_slice()).unwrap();
        assert_eq!(parsed, ops);
    }

    #[test]
    fn delta_tsv_skips_comments_and_rejects_garbage() {
        let ok = "# comment\n\n+\tq\ta\t5\t2\t0.4\n-\tq\ta\n";
        assert_eq!(read_delta_tsv(ok.as_bytes()).unwrap().len(), 2);
        for bad in [
            "*\tq\ta\n",              // unknown op
            "+\tq\ta\t5\n",           // wrong field count
            "+\tq\ta\t5\tsix\t0.4\n", // bad clicks
            "+\tq\ta\t5\t9\t0.4\n",   // clicks > impressions
            "+\tq\ta\t5\t2\tNaN\n",   // non-finite ecr
            "-\tq\ta\textra\n",       // removal with extra field
        ] {
            assert!(read_delta_tsv(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn write_delta_tsv_rejects_tab_names() {
        let ops = vec![NamedOp::Remove {
            query: "a\tb".into(),
            ad: "x".into(),
        }];
        assert!(write_delta_tsv(&ops, Vec::new()).is_err());
    }

    #[test]
    fn removal_of_out_of_range_ids_is_harmless() {
        let g = figure3_graph();
        let mut d = GraphDelta::new();
        d.remove(QueryId(999), AdId(999));
        let g2 = d.apply(&g);
        assert_eq!(g2.n_edges(), g.n_edges());
        // dirty_components must not index out of bounds.
        let dirty = d.dirty_components(&g2);
        assert_eq!(dirty.n_dirty(), 0);
    }

    #[test]
    fn diff_applied_to_old_reproduces_new() {
        let g = figure3_graph();
        let mut d = GraphDelta::new();
        let camera = g.query_by_name("camera").unwrap();
        let hp = g.ad_by_name("hp.com").unwrap();
        let flower = g.query_by_name("flower").unwrap();
        let tele = g.ad_by_name("teleflora.com").unwrap();
        d.upsert(camera, hp, EdgeData::from_clicks(3)) // change
            .remove(flower, tele) // removal
            .upsert(QueryId(g.n_queries() as u32), AdId(g.n_ads() as u32), {
                EdgeData::new(4, 2, 0.5) // growth
            });
        let g2 = d.apply(&g);
        let diff = GraphDelta::diff(&g, &g2);
        let replayed = diff.apply(&g);
        assert_eq!(replayed.n_edges(), g2.n_edges());
        for (q, a, e) in g2.edges() {
            let r = replayed.edge(q, a).expect("edge missing after replay");
            assert_eq!(r.impressions, e.impressions);
            assert_eq!(r.clicks, e.clicks);
            assert_eq!(
                r.expected_click_rate.to_bits(),
                e.expected_click_rate.to_bits()
            );
        }
        // Identical graphs diff to an empty delta.
        assert!(GraphDelta::diff(&g2, &g2).is_empty());
    }

    #[test]
    fn endpoint_dirtiness_covers_diff_dirtiness() {
        let g = figure3_graph();
        let d = fig3_delta_merge();
        let g2 = d.apply(&g);
        let via_endpoints = dirty_for_endpoints(&g2, d.ops().iter().map(|op| op.endpoints()));
        let via_diff = GraphDelta::diff(&g, &g2).dirty_components(&g2);
        assert_eq!(via_endpoints.n_components(), via_diff.n_components());
        for c in 0..via_endpoints.n_components() as u32 {
            // Every component the diff marks dirty is marked by endpoints.
            assert!(
                !via_diff.is_dirty(c) || via_endpoints.is_dirty(c),
                "diff marked component {c} but endpoint tracking missed it"
            );
        }
        // Out-of-range endpoints are ignored, not a panic.
        let out = dirty_for_endpoints(&g2, [(QueryId(999), AdId(999))]);
        assert_eq!(out.n_dirty(), 0);
    }

    #[test]
    fn click_log_round_trips() {
        let records = vec![
            ClickLogRecord::Event {
                epoch: 0,
                query: "camera".into(),
                ad: "hp.com".into(),
                data: EdgeData::new(10, 4, 0.25),
            },
            ClickLogRecord::EpochMark { epoch: 1 },
            ClickLogRecord::Event {
                epoch: 1,
                query: "flower".into(),
                ad: "teleflora.com".into(),
                data: EdgeData::new(8, 8, 0.9),
            },
        ];
        let mut buf = Vec::new();
        write_click_log(&records, &mut buf).unwrap();
        assert_eq!(read_click_log(buf.as_slice()).unwrap(), records);
    }

    #[test]
    fn click_log_skips_comments_and_rejects_garbage() {
        let ok = "# streaming log\n\n+\t3\tq\ta\t5\t2\t0.4\n@\t4\n";
        let records = read_click_log(ok.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], ClickLogRecord::EpochMark { epoch: 4 });
        for bad in [
            "-\tq\ta\n",               // removals have no place in a click log
            "+\tq\ta\t5\t2\t0.4\n",    // missing epoch column
            "+\tx\tq\ta\t5\t2\t0.4\n", // non-numeric epoch
            "+\t1\tq\ta\t5\t9\t0.4\n", // clicks > impressions
            "+\t1\tq\ta\t5\t2\tinf\n", // non-finite ecr
            "@\n",                     // epoch mark without epoch
            "@\t1\textra\n",           // epoch mark with extra field
            "*\t1\tq\ta\t5\t2\t0.4\n", // unknown op
        ] {
            assert!(read_click_log(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn write_click_log_rejects_tab_names() {
        let records = vec![ClickLogRecord::Event {
            epoch: 0,
            query: "a\tb".into(),
            ad: "x".into(),
            data: EdgeData::from_clicks(1),
        }];
        assert!(write_click_log(&records, Vec::new()).is_err());
    }
}
