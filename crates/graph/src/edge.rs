//! Per-edge weight data.
//!
//! §2: each click-graph edge `(q, α)` has three associated weights —
//! impressions, clicks (≤ impressions), and the expected click rate (a
//! position-adjusted clicks/impressions ratio). §9.2: *"In all our experiments
//! that required the use of an edge weight we used the expected click rate."*
//! [`WeightKind`] lets every algorithm choose which weight to consume, and the
//! ablation bench `ablation_weights` sweeps all three.

use serde::{Deserialize, Serialize};

/// The three §2 edge weights for one `(query, ad)` edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EdgeData {
    /// Number of times the ad was displayed for the query.
    pub impressions: u64,
    /// Number of those displays that were clicked. Invariant: ≤ impressions.
    pub clicks: u64,
    /// Position-adjusted clicks/impressions ratio computed by the back-end.
    pub expected_click_rate: f64,
}

impl EdgeData {
    /// Creates edge data, checking the clicks ≤ impressions invariant.
    ///
    /// # Panics
    /// Panics if `clicks > impressions` or `expected_click_rate` is negative
    /// or non-finite.
    pub fn new(impressions: u64, clicks: u64, expected_click_rate: f64) -> Self {
        assert!(
            clicks <= impressions,
            "clicks ({clicks}) must not exceed impressions ({impressions})"
        );
        assert!(
            expected_click_rate.is_finite() && expected_click_rate >= 0.0,
            "expected click rate must be finite and non-negative, got {expected_click_rate}"
        );
        EdgeData {
            impressions,
            clicks,
            expected_click_rate,
        }
    }

    /// Edge data carrying only a click count (impressions = clicks, ECR =
    /// raw click-through 1.0). Used by the small worked examples where the
    /// paper only talks about clicks.
    pub fn from_clicks(clicks: u64) -> Self {
        EdgeData {
            impressions: clicks,
            clicks,
            expected_click_rate: if clicks > 0 { 1.0 } else { 0.0 },
        }
    }

    /// Raw (unadjusted) click-through rate; 0 when there were no impressions.
    pub fn raw_ctr(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.clicks as f64 / self.impressions as f64
        }
    }

    /// The weight of the chosen [`WeightKind`].
    #[inline]
    pub fn weight(&self, kind: WeightKind) -> f64 {
        match kind {
            WeightKind::Impressions => self.impressions as f64,
            WeightKind::Clicks => self.clicks as f64,
            WeightKind::ExpectedClickRate => self.expected_click_rate,
        }
    }

    /// Accumulates another observation window onto this edge.
    ///
    /// ECR combines as an impression-weighted average, matching how the
    /// back-end would recompute it over the union of the windows.
    pub fn merge(&mut self, other: &EdgeData) {
        let total_impr = self.impressions + other.impressions;
        if total_impr > 0 {
            self.expected_click_rate = (self.expected_click_rate * self.impressions as f64
                + other.expected_click_rate * other.impressions as f64)
                / total_impr as f64;
        } else {
            self.expected_click_rate =
                (self.expected_click_rate + other.expected_click_rate).max(0.0) / 2.0;
        }
        self.impressions = total_impr;
        self.clicks += other.clicks;
    }
}

/// Which of the three §2 edge weights an algorithm should consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WeightKind {
    /// Displays of the ad for the query.
    Impressions,
    /// Clicks the ad received for the query.
    Clicks,
    /// Position-adjusted clicks/impressions (the paper's experiments use this).
    #[default]
    ExpectedClickRate,
}

impl WeightKind {
    /// All weight kinds, for ablation sweeps.
    pub const ALL: [WeightKind; 3] = [
        WeightKind::Impressions,
        WeightKind::Clicks,
        WeightKind::ExpectedClickRate,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WeightKind::Impressions => "impressions",
            WeightKind::Clicks => "clicks",
            WeightKind::ExpectedClickRate => "expected-click-rate",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_invariants() {
        let e = EdgeData::new(10, 3, 0.35);
        assert_eq!(e.impressions, 10);
        assert_eq!(e.clicks, 3);
        assert!((e.raw_ctr() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clicks")]
    fn clicks_cannot_exceed_impressions() {
        EdgeData::new(2, 3, 0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn ecr_must_be_finite() {
        EdgeData::new(2, 1, f64::NAN);
    }

    #[test]
    fn from_clicks_shortcut() {
        let e = EdgeData::from_clicks(5);
        assert_eq!(e.clicks, 5);
        assert_eq!(e.impressions, 5);
        assert_eq!(e.expected_click_rate, 1.0);
        assert_eq!(EdgeData::from_clicks(0).expected_click_rate, 0.0);
    }

    #[test]
    fn weight_selection() {
        let e = EdgeData::new(100, 7, 0.09);
        assert_eq!(e.weight(WeightKind::Impressions), 100.0);
        assert_eq!(e.weight(WeightKind::Clicks), 7.0);
        assert_eq!(e.weight(WeightKind::ExpectedClickRate), 0.09);
    }

    #[test]
    fn merge_weighted_average_ecr() {
        let mut a = EdgeData::new(10, 2, 0.2);
        let b = EdgeData::new(30, 3, 0.4);
        a.merge(&b);
        assert_eq!(a.impressions, 40);
        assert_eq!(a.clicks, 5);
        // (0.2*10 + 0.4*30)/40 = 0.35
        assert!((a.expected_click_rate - 0.35).abs() < 1e-12);
    }

    #[test]
    fn zero_ctr_when_no_impressions() {
        let e = EdgeData::default();
        assert_eq!(e.raw_ctr(), 0.0);
    }
}
