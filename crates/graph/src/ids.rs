//! Typed dense node identifiers.
//!
//! Queries and ads live in separate id spaces (`Q` and `A` in the paper's
//! `G = (Q, A, E)`), both dense `u32` ranges starting at zero. Newtypes keep
//! the two spaces from being mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a query node (`q ∈ Q`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct QueryId(pub u32);

/// Identifier of an ad node (`α ∈ A`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct AdId(pub u32);

impl QueryId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AdId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for AdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u32> for QueryId {
    fn from(v: u32) -> Self {
        QueryId(v)
    }
}

impl From<u32> for AdId {
    fn from(v: u32) -> Self {
        AdId(v)
    }
}

/// A reference to either side of the bipartite graph.
///
/// Algorithms that walk the whole graph (PageRank, partitioning) treat the
/// two node sets uniformly through this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeRef {
    /// A query-side node.
    Query(QueryId),
    /// An ad-side node.
    Ad(AdId),
}

impl NodeRef {
    /// `true` if this is a query node.
    pub fn is_query(self) -> bool {
        matches!(self, NodeRef::Query(_))
    }

    /// `true` if this is an ad node.
    pub fn is_ad(self) -> bool {
        matches!(self, NodeRef::Ad(_))
    }

    /// The query id, if this is a query node.
    pub fn as_query(self) -> Option<QueryId> {
        match self {
            NodeRef::Query(q) => Some(q),
            NodeRef::Ad(_) => None,
        }
    }

    /// The ad id, if this is an ad node.
    pub fn as_ad(self) -> Option<AdId> {
        match self {
            NodeRef::Ad(a) => Some(a),
            NodeRef::Query(_) => None,
        }
    }

    /// Flattens the two id spaces into one dense range: queries first
    /// (`0..n_queries`), then ads (`n_queries..n_queries+n_ads`).
    pub fn flat_index(self, n_queries: usize) -> usize {
        match self {
            NodeRef::Query(q) => q.index(),
            NodeRef::Ad(a) => n_queries + a.index(),
        }
    }

    /// Inverse of [`NodeRef::flat_index`].
    pub fn from_flat_index(idx: usize, n_queries: usize) -> NodeRef {
        if idx < n_queries {
            NodeRef::Query(QueryId(idx as u32))
        } else {
            NodeRef::Ad(AdId((idx - n_queries) as u32))
        }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Query(q) => write!(f, "{q}"),
            NodeRef::Ad(a) => write!(f, "{a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(QueryId(3).to_string(), "q3");
        assert_eq!(AdId(7).to_string(), "a7");
        assert_eq!(NodeRef::Query(QueryId(3)).to_string(), "q3");
    }

    #[test]
    fn flat_index_roundtrip() {
        let n_queries = 10;
        for idx in 0..25 {
            let node = NodeRef::from_flat_index(idx, n_queries);
            assert_eq!(node.flat_index(n_queries), idx);
        }
        assert!(NodeRef::from_flat_index(9, n_queries).is_query());
        assert!(NodeRef::from_flat_index(10, n_queries).is_ad());
    }

    #[test]
    fn accessors() {
        let q = NodeRef::Query(QueryId(1));
        let a = NodeRef::Ad(AdId(2));
        assert_eq!(q.as_query(), Some(QueryId(1)));
        assert_eq!(q.as_ad(), None);
        assert_eq!(a.as_ad(), Some(AdId(2)));
        assert_eq!(a.as_query(), None);
    }
}
