//! Degree statistics and power-law diagnostics.
//!
//! §9.2 reports Table 5 (per-subgraph query/ad/edge counts) and observes
//! "a number of power-law distributions, including ads-per-query,
//! queries-per-ad and number of clicks per query-ad pair". [`GraphStats`]
//! computes those counts and histograms, plus a discrete maximum-likelihood
//! power-law exponent so the synthetic generator can be checked against the
//! paper's observation.

use crate::edge::WeightKind;
use crate::graph::ClickGraph;
use serde::{Deserialize, Serialize};

/// A degree (or click-count) histogram: `counts[d]` = number of nodes with
/// degree exactly `d` (index 0 = isolated).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct DegreeHistogram {
    /// Frequency per degree.
    pub counts: Vec<u64>,
}

impl DegreeHistogram {
    /// Builds a histogram from raw degrees.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for d in degrees {
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DegreeHistogram { counts }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Maximum observed degree.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        sum as f64 / total as f64
    }

    /// Discrete MLE power-law exponent `α ≈ 1 + n / Σ ln(d / (d_min - ½))`
    /// over observations with degree ≥ `d_min` (Clauset–Shalizi–Newman).
    /// Returns `None` when fewer than two qualifying observations exist.
    pub fn powerlaw_alpha(&self, d_min: usize) -> Option<f64> {
        let d_min = d_min.max(1);
        let mut n = 0u64;
        let mut log_sum = 0.0f64;
        for (d, &c) in self.counts.iter().enumerate().skip(d_min) {
            if c == 0 {
                continue;
            }
            n += c;
            log_sum += c as f64 * (d as f64 / (d_min as f64 - 0.5)).ln();
        }
        if n < 2 || log_sum <= 0.0 {
            None
        } else {
            Some(1.0 + n as f64 / log_sum)
        }
    }
}

/// Summary statistics of a click graph (Table 5 rows plus distribution
/// diagnostics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|Q|`.
    pub n_queries: usize,
    /// `|A|`.
    pub n_ads: usize,
    /// `|E|`.
    pub n_edges: usize,
    /// Ads-per-query histogram.
    pub ads_per_query: DegreeHistogram,
    /// Queries-per-ad histogram.
    pub queries_per_ad: DegreeHistogram,
    /// Clicks-per-edge histogram.
    pub clicks_per_edge: DegreeHistogram,
    /// Total clicks over all edges.
    pub total_clicks: u64,
    /// Total impressions over all edges.
    pub total_impressions: u64,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &ClickGraph) -> Self {
        let ads_per_query = DegreeHistogram::from_degrees(g.queries().map(|q| g.query_degree(q)));
        let queries_per_ad = DegreeHistogram::from_degrees(g.ads().map(|a| g.ad_degree(a)));
        let clicks_per_edge =
            DegreeHistogram::from_degrees(g.edges().map(|(_, _, e)| e.clicks as usize));
        let total_clicks = g.edges().map(|(_, _, e)| e.clicks).sum();
        let total_impressions = g.edges().map(|(_, _, e)| e.impressions).sum();
        GraphStats {
            n_queries: g.n_queries(),
            n_ads: g.n_ads(),
            n_edges: g.n_edges(),
            ads_per_query,
            queries_per_ad,
            clicks_per_edge,
            total_clicks,
            total_impressions,
        }
    }

    /// One row of Table 5: `(#queries, #ads, #edges)`.
    pub fn table5_row(&self) -> (usize, usize, usize) {
        (self.n_queries, self.n_ads, self.n_edges)
    }

    /// Mean of the chosen edge weight.
    pub fn mean_edge_weight(&self, g: &ClickGraph, kind: WeightKind) -> f64 {
        if self.n_edges == 0 {
            return 0.0;
        }
        g.edges().map(|(_, _, e)| e.weight(kind)).sum::<f64>() / self.n_edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClickGraphBuilder;
    use crate::edge::EdgeData;
    use crate::fixtures::figure3_graph;
    use crate::ids::{AdId, QueryId};

    #[test]
    fn figure3_stats() {
        let g = figure3_graph();
        let s = GraphStats::compute(&g);
        assert_eq!(s.table5_row(), (5, 4, 8));
        assert_eq!(s.total_clicks, 8);
        // Degrees: pc=1, camera=2, digital=2, tv=1, flower=2.
        assert_eq!(s.ads_per_query.counts, vec![0, 2, 3]);
        assert_eq!(s.ads_per_query.total(), 5);
        assert!((s.ads_per_query.mean() - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_from_degrees() {
        let h = DegreeHistogram::from_degrees([0, 1, 1, 3].into_iter());
        assert_eq!(h.counts, vec![1, 2, 0, 1]);
        assert_eq!(h.max_degree(), 3);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn empty_histogram() {
        let h = DegreeHistogram::from_degrees(std::iter::empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.powerlaw_alpha(1).is_none());
    }

    #[test]
    fn powerlaw_alpha_recovers_exponent() {
        // Synthesize a perfect power law p(d) ∝ d^-2.5 over d=10..10000 and
        // check the MLE lands near 2.5. The CSN continuous approximation is
        // biased for d_min < ~6, so fit from d_min = 10.
        let alpha_true = 2.5f64;
        let d_min = 10usize;
        let mut counts = vec![0u64; d_min];
        let scale = 1e9;
        for d in d_min..=10_000usize {
            counts.push((scale * (d as f64).powf(-alpha_true)) as u64);
        }
        let h = DegreeHistogram { counts };
        let alpha = h.powerlaw_alpha(d_min).unwrap();
        assert!(
            (alpha - alpha_true).abs() < 0.05,
            "estimated {alpha}, wanted ~{alpha_true}"
        );
    }

    #[test]
    fn mean_edge_weight() {
        let mut b = ClickGraphBuilder::new();
        b.add_edge(QueryId(0), AdId(0), EdgeData::new(10, 2, 0.2));
        b.add_edge(QueryId(1), AdId(0), EdgeData::new(10, 4, 0.4));
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert!((s.mean_edge_weight(&g, WeightKind::ExpectedClickRate) - 0.3).abs() < 1e-12);
        assert!((s.mean_edge_weight(&g, WeightKind::Clicks) - 3.0).abs() < 1e-12);
        assert_eq!(s.total_impressions, 20);
    }
}
