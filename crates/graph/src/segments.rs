//! Segmented on-disk click-graph store.
//!
//! The §9.2 click graph decomposes into connected components, and every
//! similarity scheme in this workspace is component-local (the score matrix
//! is block-diagonal). The segmented store exploits that: the graph is
//! written as a sequence of *segments* — component groups, each a fully
//! self-contained [`crate::ClickGraph`] serialized as one zero-copy arena
//! blob — so both the writer and any downstream consumer need to hold only
//! **one segment** in memory at a time. Peak build memory is bounded by the
//! largest segment, not by the whole graph.
//!
//! ```text
//! offset 0    file header (24 bytes): magic "SRPPSEG\0", version u32,
//!             reserved u32, endian mark u64
//! offset 24   segment blob 0   (arena, magic "SRPPSGB\0")
//! ...         segment blob 1, 2, ...
//!             manifest blob    (arena, magic "SRPPSGM\0"): per-segment
//!             offsets/lengths/counts + graph totals
//! EOF-24      trailer (24 bytes): manifest offset u64, manifest len u64,
//!             magic "SRPPSGT\0"
//! ```
//!
//! The manifest trails the segments so the writer streams front-to-back
//! through any `Write` sink without seeking; readers find it via the fixed
//! trailer. [`SegmentedStore::open`] reads header + trailer + manifest only
//! — O(#segments), independent of graph size — and [`SegmentedStore::load_segment`]
//! reads exactly one blob.
//!
//! Reconstruction is exact: [`SegmentedStore::load_all`] replays every
//! segment's edges (with per-segment local→global id maps) through
//! [`ClickGraphBuilder`], whose `build()` sorts edges by `(q, a)` — so the
//! resulting CSR is bit-for-bit identical to the monolithic graph no matter
//! how the edges were partitioned. The differential test suite asserts this
//! via [`ClickGraph::fingerprint`].

use crate::builder::ClickGraphBuilder;
use crate::components::connected_components;
use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use crate::ids::{AdId, NodeRef, QueryId};
use crate::subgraph::induced_subgraph;
use simrankpp_util::{AlignedBytes, Arena, ArenaWriter, ENDIAN_MARK};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic of the store file header.
pub const STORE_MAGIC: [u8; 8] = *b"SRPPSEG\0";
/// Magic of each per-segment arena blob.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SRPPSGB\0";
/// Magic of the trailing manifest arena blob.
pub const MANIFEST_MAGIC: [u8; 8] = *b"SRPPSGM\0";
/// Magic of the fixed-size trailer.
pub const TRAILER_MAGIC: [u8; 8] = *b"SRPPSGT\0";
/// Store format version.
pub const STORE_VERSION: u32 = 1;

/// Size of the fixed file header in bytes.
pub const STORE_HEADER_BYTES: usize = 24;
/// Size of the fixed trailer in bytes.
pub const STORE_TRAILER_BYTES: usize = 24;

// Segment blob sections.
const SEG_META: u64 = 0x01; // [n_queries, n_ads, n_edges, has_names] as u64
const SEG_EDGE_Q: u64 = 0x02; // u32 local query id per edge
const SEG_EDGE_A: u64 = 0x03; // u32 local ad id per edge
const SEG_EDGE_IMPR: u64 = 0x04; // u64 impressions per edge
const SEG_EDGE_CLK: u64 = 0x05; // u64 clicks per edge
const SEG_EDGE_ECR: u64 = 0x06; // f64 expected click rate per edge
const SEG_QMAP: u64 = 0x07; // u32 global query id per local id
const SEG_AMAP: u64 = 0x08; // u32 global ad id per local id
const SEG_QNAME_OFFS: u64 = 0x09; // u64[nq + 1] offsets into the name blob
const SEG_QNAME_BLOB: u64 = 0x0a; // concatenated UTF-8 query names
const SEG_ANAME_OFFS: u64 = 0x0b;
const SEG_ANAME_BLOB: u64 = 0x0c;

// Manifest blob sections.
const MF_META: u64 = 0x01; // [n_segments, total_queries, total_ads, total_edges, has_names]
const MF_SEG_OFF: u64 = 0x02; // u64 absolute file offset per segment
const MF_SEG_LEN: u64 = 0x03; // u64 blob length per segment
const MF_SEG_NQ: u64 = 0x04; // u64 query count per segment
const MF_SEG_NA: u64 = 0x05; // u64 ad count per segment
const MF_SEG_NE: u64 = 0x06; // u64 edge count per segment

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// One component group: a self-contained subgraph plus its local→global
/// id maps. `queries[local.0] == global.0` for every local query id, and
/// likewise for ads.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The induced subgraph of this component group (local, dense ids).
    pub graph: ClickGraph,
    /// Global query id per local query id.
    pub queries: Vec<u32>,
    /// Global ad id per local ad id.
    pub ads: Vec<u32>,
}

impl Segment {
    /// Whether this segment carries display names (both sides, matching
    /// [`induced_subgraph`]'s carry-over rule).
    pub fn has_names(&self) -> bool {
        self.graph.query_interner().is_some() && self.graph.ad_interner().is_some()
    }
}

/// Partitions `g` into component-group segments of roughly `target_nodes`
/// nodes each (always at least one whole component per segment; a component
/// larger than the target gets a segment of its own). Every node — including
/// isolated ones, which form singleton components — lands in exactly one
/// segment, so the segments reconstruct `g` exactly.
pub fn component_segments(g: &ClickGraph, target_nodes: usize) -> Vec<Segment> {
    let comps = connected_components(g);
    if comps.count == 0 {
        return Vec::new();
    }
    // Bucket nodes by component in one pass (Components::members is a full
    // scan per call — quadratic over 1M singleton components).
    let mut buckets: Vec<Vec<NodeRef>> = vec![Vec::new(); comps.count];
    for (i, &l) in comps.query_label.iter().enumerate() {
        buckets[l as usize].push(NodeRef::Query(QueryId(i as u32)));
    }
    for (i, &l) in comps.ad_label.iter().enumerate() {
        buckets[l as usize].push(NodeRef::Ad(AdId(i as u32)));
    }

    let target = target_nodes.max(1);
    let mut segments = Vec::new();
    let mut group: Vec<NodeRef> = Vec::new();
    for bucket in &buckets {
        group.extend_from_slice(bucket);
        if group.len() >= target {
            segments.push(segment_from_nodes(g, &group));
            group.clear();
        }
    }
    if !group.is_empty() {
        segments.push(segment_from_nodes(g, &group));
    }
    segments
}

fn segment_from_nodes(g: &ClickGraph, nodes: &[NodeRef]) -> Segment {
    // Order the node list queries-first, each side ascending by global id,
    // so local ids are *monotone* in global ids. Monotone remapping keeps
    // equal-score candidate tie-breaks (which compare ids) identical between
    // a per-segment build and a monolithic one.
    let mut nodes: Vec<NodeRef> = nodes.to_vec();
    nodes.sort_unstable_by_key(|n| match n {
        NodeRef::Query(q) => (0u8, q.0),
        NodeRef::Ad(a) => (1u8, a.0),
    });
    let (sub, mapping) = induced_subgraph(g, &nodes);
    let queries = (0..sub.n_queries())
        .map(|i| mapping.to_parent_query(QueryId(i as u32)).0)
        .collect();
    let ads = (0..sub.n_ads())
        .map(|i| mapping.to_parent_ad(AdId(i as u32)).0)
        .collect();
    Segment {
        graph: sub,
        queries,
        ads,
    }
}

/// Streams a segmented store front-to-back through any [`Write`] sink.
/// Only the segment currently being appended is materialized; the manifest
/// accumulates 5 words per segment.
pub struct SegmentWriter<W: Write> {
    sink: W,
    offset: u64,
    seg_off: Vec<u64>,
    seg_len: Vec<u64>,
    seg_nq: Vec<u64>,
    seg_na: Vec<u64>,
    seg_ne: Vec<u64>,
    total_q: u64,
    total_a: u64,
    total_e: u64,
    has_names: Option<bool>,
}

impl<W: Write> SegmentWriter<W> {
    /// Writes the fixed file header and returns the writer.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&STORE_MAGIC)?;
        sink.write_all(&STORE_VERSION.to_ne_bytes())?;
        sink.write_all(&0u32.to_ne_bytes())?;
        sink.write_all(&ENDIAN_MARK.to_ne_bytes())?;
        Ok(SegmentWriter {
            sink,
            offset: STORE_HEADER_BYTES as u64,
            seg_off: Vec::new(),
            seg_len: Vec::new(),
            seg_nq: Vec::new(),
            seg_na: Vec::new(),
            seg_ne: Vec::new(),
            total_q: 0,
            total_a: 0,
            total_e: 0,
            has_names: None,
        })
    }

    /// Serializes one segment as a self-contained arena blob. All segments
    /// of a store must agree on name presence.
    pub fn append(&mut self, seg: &Segment) -> io::Result<()> {
        let g = &seg.graph;
        let named = seg.has_names();
        match self.has_names {
            None => self.has_names = Some(named),
            Some(prev) if prev != named => {
                return Err(bad("segments disagree on name presence"));
            }
            Some(_) => {}
        }
        if seg.queries.len() != g.n_queries() || seg.ads.len() != g.n_ads() {
            return Err(bad("segment id maps do not match its graph"));
        }

        let ne = g.n_edges();
        let mut eq: Vec<u32> = Vec::with_capacity(ne);
        let mut ea: Vec<u32> = Vec::with_capacity(ne);
        let mut impr: Vec<u64> = Vec::with_capacity(ne);
        let mut clk: Vec<u64> = Vec::with_capacity(ne);
        let mut ecr: Vec<f64> = Vec::with_capacity(ne);
        for (q, a, e) in g.edges() {
            eq.push(q.0);
            ea.push(a.0);
            impr.push(e.impressions);
            clk.push(e.clicks);
            ecr.push(e.expected_click_rate);
        }

        let meta: Vec<u64> = vec![
            g.n_queries() as u64,
            g.n_ads() as u64,
            ne as u64,
            named as u64,
        ];
        let (q_offs, q_blob) = if named {
            pack_names(g.query_interner().unwrap(), g.n_queries())
        } else {
            Default::default()
        };
        let (a_offs, a_blob) = if named {
            pack_names(g.ad_interner().unwrap(), g.n_ads())
        } else {
            Default::default()
        };

        let mut aw = ArenaWriter::new(SEGMENT_MAGIC, STORE_VERSION);
        aw.slice(SEG_META, &meta)
            .slice(SEG_EDGE_Q, &eq)
            .slice(SEG_EDGE_A, &ea)
            .slice(SEG_EDGE_IMPR, &impr)
            .slice(SEG_EDGE_CLK, &clk)
            .slice(SEG_EDGE_ECR, &ecr)
            .slice(SEG_QMAP, &seg.queries)
            .slice(SEG_AMAP, &seg.ads);
        if named {
            aw.slice(SEG_QNAME_OFFS, &q_offs)
                .section(SEG_QNAME_BLOB, &q_blob)
                .slice(SEG_ANAME_OFFS, &a_offs)
                .section(SEG_ANAME_BLOB, &a_blob);
        }
        let len = aw.write_to(&mut self.sink)?;

        self.seg_off.push(self.offset);
        self.seg_len.push(len);
        self.seg_nq.push(g.n_queries() as u64);
        self.seg_na.push(g.n_ads() as u64);
        self.seg_ne.push(ne as u64);
        self.total_q += g.n_queries() as u64;
        self.total_a += g.n_ads() as u64;
        self.total_e += ne as u64;
        self.offset += len;
        Ok(())
    }

    /// Writes the manifest blob and trailer, returning the sink and the
    /// total file size in bytes.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        let meta: Vec<u64> = vec![
            self.seg_off.len() as u64,
            self.total_q,
            self.total_a,
            self.total_e,
            self.has_names.unwrap_or(false) as u64,
        ];
        let mut aw = ArenaWriter::new(MANIFEST_MAGIC, STORE_VERSION);
        aw.slice(MF_META, &meta)
            .slice(MF_SEG_OFF, &self.seg_off)
            .slice(MF_SEG_LEN, &self.seg_len)
            .slice(MF_SEG_NQ, &self.seg_nq)
            .slice(MF_SEG_NA, &self.seg_na)
            .slice(MF_SEG_NE, &self.seg_ne);
        let manifest_off = self.offset;
        let manifest_len = aw.write_to(&mut self.sink)?;
        self.sink.write_all(&manifest_off.to_ne_bytes())?;
        self.sink.write_all(&manifest_len.to_ne_bytes())?;
        self.sink.write_all(&TRAILER_MAGIC)?;
        Ok((
            self.sink,
            manifest_off + manifest_len + STORE_TRAILER_BYTES as u64,
        ))
    }
}

/// Writes `g` to `path` as a segmented store with component groups of
/// roughly `target_nodes` nodes. Convenience over
/// [`component_segments`] + [`SegmentWriter`]; note this path materializes
/// the segments from an already-in-memory graph — build pipelines that care
/// about peak memory should append segments as they produce them.
pub fn write_segmented(g: &ClickGraph, path: &Path, target_nodes: usize) -> io::Result<u64> {
    simrankpp_util::fail_point!("segment-write");
    let (atomic, file) = simrankpp_util::AtomicFile::create(path)?;
    let mut w = SegmentWriter::new(io::BufWriter::new(file))?;
    for seg in component_segments(g, target_nodes) {
        w.append(&seg)?;
    }
    let (sink, written) = w.finish()?;
    let file = sink.into_inner().map_err(|e| e.into_error())?;
    atomic.commit(file)?;
    Ok(written)
}

/// Per-segment directory row, decoded from the manifest.
#[derive(Debug, Clone, Copy)]
pub struct SegmentInfo {
    /// Absolute file offset of the segment's arena blob.
    pub offset: u64,
    /// Blob length in bytes.
    pub len: u64,
    /// Query count of the segment.
    pub n_queries: u64,
    /// Ad count of the segment.
    pub n_ads: u64,
    /// Edge count of the segment.
    pub n_edges: u64,
}

/// An open segmented store. `open` reads header + trailer + manifest only;
/// segment payloads are read on demand, one at a time.
#[derive(Debug)]
pub struct SegmentedStore {
    file: File,
    file_len: u64,
    segments: Vec<SegmentInfo>,
    total_queries: u64,
    total_ads: u64,
    total_edges: u64,
    has_names: bool,
}

impl SegmentedStore {
    /// Opens a store, validating header, trailer, and manifest — O(#segments)
    /// work regardless of graph size.
    pub fn open(path: &Path) -> io::Result<SegmentedStore> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (STORE_HEADER_BYTES + STORE_TRAILER_BYTES) as u64 {
            return Err(bad(format!("segmented store too short: {file_len} bytes")));
        }
        let mut header = [0u8; STORE_HEADER_BYTES];
        file.read_exact(&mut header)?;
        if header[..8] != STORE_MAGIC {
            return Err(bad("bad segmented-store magic"));
        }
        let version = u32::from_ne_bytes(header[8..12].try_into().unwrap());
        if version != STORE_VERSION {
            return Err(bad(format!(
                "unsupported segmented-store version {version} (expected {STORE_VERSION})"
            )));
        }
        if u64::from_ne_bytes(header[16..24].try_into().unwrap()) != ENDIAN_MARK {
            return Err(bad(
                "endianness marker mismatch — store was written on a foreign-endian machine",
            ));
        }

        let mut trailer = [0u8; STORE_TRAILER_BYTES];
        file.seek(SeekFrom::End(-(STORE_TRAILER_BYTES as i64)))?;
        file.read_exact(&mut trailer)?;
        if trailer[16..24] != TRAILER_MAGIC {
            return Err(bad("bad segmented-store trailer magic"));
        }
        let manifest_off = u64::from_ne_bytes(trailer[0..8].try_into().unwrap());
        let manifest_len = u64::from_ne_bytes(trailer[8..16].try_into().unwrap());
        let manifest_end = manifest_off
            .checked_add(manifest_len)
            .ok_or_else(|| bad("manifest extent overflows"))?;
        if manifest_off < STORE_HEADER_BYTES as u64
            || manifest_end > file_len - STORE_TRAILER_BYTES as u64
        {
            return Err(bad(format!(
                "manifest {manifest_off}..{manifest_end} out of file bounds"
            )));
        }

        let mut buf = AlignedBytes::zeroed(manifest_len as usize);
        file.seek(SeekFrom::Start(manifest_off))?;
        file.read_exact(buf.as_mut_slice())?;
        let arena = Arena::parse(buf.as_slice(), MANIFEST_MAGIC).map_err(bad)?;
        let meta = arena.slice::<u64>(MF_META).map_err(bad)?;
        if meta.len() != 5 {
            return Err(bad("manifest meta has wrong length"));
        }
        let n = meta[0] as usize;
        let offs = arena.slice::<u64>(MF_SEG_OFF).map_err(bad)?;
        let lens = arena.slice::<u64>(MF_SEG_LEN).map_err(bad)?;
        let nqs = arena.slice::<u64>(MF_SEG_NQ).map_err(bad)?;
        let nas = arena.slice::<u64>(MF_SEG_NA).map_err(bad)?;
        let nes = arena.slice::<u64>(MF_SEG_NE).map_err(bad)?;
        if [offs.len(), lens.len(), nqs.len(), nas.len(), nes.len()] != [n; 5] {
            return Err(bad("manifest segment arrays disagree on length"));
        }
        let mut segments = Vec::with_capacity(n);
        for i in 0..n {
            let end = offs[i]
                .checked_add(lens[i])
                .ok_or_else(|| bad(format!("segment {i} extent overflows")))?;
            if offs[i] < STORE_HEADER_BYTES as u64 || end > manifest_off {
                return Err(bad(format!(
                    "segment {i} claims bytes {}..{end} outside the segment region",
                    offs[i]
                )));
            }
            segments.push(SegmentInfo {
                offset: offs[i],
                len: lens[i],
                n_queries: nqs[i],
                n_ads: nas[i],
                n_edges: nes[i],
            });
        }
        Ok(SegmentedStore {
            file,
            file_len,
            segments,
            total_queries: meta[1],
            total_ads: meta[2],
            total_edges: meta[3],
            has_names: meta[4] != 0,
        })
    }

    /// Number of segments in the store.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Directory row of segment `i`.
    pub fn segment_info(&self, i: usize) -> SegmentInfo {
        self.segments[i]
    }

    /// Total query count across all segments.
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    /// Total ad count across all segments.
    pub fn total_ads(&self) -> u64 {
        self.total_ads
    }

    /// Total edge count across all segments.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Whether the store carries display names.
    pub fn has_names(&self) -> bool {
        self.has_names
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Reads and reconstructs exactly one segment — peak memory is that
    /// segment's blob plus its rebuilt graph.
    pub fn load_segment(&mut self, i: usize) -> io::Result<Segment> {
        let info = self
            .segments
            .get(i)
            .copied()
            .ok_or_else(|| bad(format!("segment index {i} out of range")))?;
        let mut buf = AlignedBytes::zeroed(info.len as usize);
        self.file.seek(SeekFrom::Start(info.offset))?;
        self.file.read_exact(buf.as_mut_slice())?;
        let seg = parse_segment(buf.as_slice())?;
        if seg.graph.n_queries() as u64 != info.n_queries
            || seg.graph.n_ads() as u64 != info.n_ads
            || seg.graph.n_edges() as u64 != info.n_edges
        {
            return Err(bad(format!("segment {i} counts disagree with manifest")));
        }
        Ok(seg)
    }

    /// Reconstructs the whole monolithic graph by replaying every segment.
    /// The result is bit-for-bit identical to the graph the segments were cut
    /// from: `build()` sorts edges by `(q, a)` and names are re-interned in
    /// global id order, so partitioning and replay order leave no trace.
    pub fn load_all(&mut self) -> io::Result<ClickGraph> {
        let mut b = ClickGraphBuilder::with_capacity(self.total_edges as usize);
        let total_q = u32::try_from(self.total_queries).map_err(|_| bad("query count overflow"))?;
        let total_a = u32::try_from(self.total_ads).map_err(|_| bad("ad count overflow"))?;

        let mut q_names: Vec<(u32, String)> = Vec::new();
        let mut a_names: Vec<(u32, String)> = Vec::new();
        for i in 0..self.n_segments() {
            let seg = self.load_segment(i)?;
            if self.has_names {
                for (local, &global) in seg.queries.iter().enumerate() {
                    let name = seg
                        .graph
                        .query_name(QueryId(local as u32))
                        .ok_or_else(|| bad(format!("segment {i}: query {local} has no name")))?;
                    q_names.push((global, name.to_string()));
                }
                for (local, &global) in seg.ads.iter().enumerate() {
                    let name = seg
                        .graph
                        .ad_name(AdId(local as u32))
                        .ok_or_else(|| bad(format!("segment {i}: ad {local} has no name")))?;
                    a_names.push((global, name.to_string()));
                }
            }
            for (q, a, e) in seg.graph.edges() {
                let gq = *seg
                    .queries
                    .get(q.index())
                    .ok_or_else(|| bad(format!("segment {i}: query id {q} outside its map")))?;
                let ga = *seg
                    .ads
                    .get(a.index())
                    .ok_or_else(|| bad(format!("segment {i}: ad id {a} outside its map")))?;
                if gq >= total_q || ga >= total_a {
                    return Err(bad(format!(
                        "segment {i}: global edge ({gq},{ga}) exceeds store totals"
                    )));
                }
                b.add_edge(QueryId(gq), AdId(ga), *e);
            }
        }

        if self.has_names {
            // Intern in global id order so interned id == global id exactly.
            q_names.sort_unstable_by_key(|x| x.0);
            a_names.sort_unstable_by_key(|x| x.0);
            intern_in_order(&q_names, total_q, "query", |name| b.intern_query(name).0)?;
            intern_in_order(&a_names, total_a, "ad", |name| b.intern_ad(name).0)?;
        } else {
            b.reserve_queries(total_q);
            b.reserve_ads(total_a);
        }
        Ok(b.build())
    }
}

fn intern_in_order(
    names: &[(u32, String)],
    total: u32,
    side: &str,
    mut intern: impl FnMut(&str) -> u32,
) -> io::Result<()> {
    if names.len() as u64 != total as u64 {
        return Err(bad(format!(
            "{side} names cover {} ids, store claims {total}",
            names.len()
        )));
    }
    for (expect, (global, name)) in names.iter().enumerate() {
        if *global != expect as u32 {
            return Err(bad(format!(
                "{side} id {expect} missing or duplicated across segments"
            )));
        }
        let got = intern(name);
        if got != *global {
            return Err(bad(format!(
                "{side} name {name:?} maps to id {got}, expected {global} — duplicate name across segments"
            )));
        }
    }
    Ok(())
}

/// Concatenates interner names `0..n` into (offsets, blob) sections.
fn pack_names(interner: &crate::interner::Interner, n: usize) -> (Vec<u64>, Vec<u8>) {
    let mut offs = Vec::with_capacity(n + 1);
    let mut blob = Vec::new();
    offs.push(0u64);
    for id in 0..n as u32 {
        if let Some(name) = interner.name(id) {
            blob.extend_from_slice(name.as_bytes());
        }
        offs.push(blob.len() as u64);
    }
    (offs, blob)
}

/// Decodes one segment blob back into a [`Segment`].
fn parse_segment(bytes: &[u8]) -> io::Result<Segment> {
    let arena = Arena::parse(bytes, SEGMENT_MAGIC).map_err(bad)?;
    if arena.version() != STORE_VERSION {
        return Err(bad(format!(
            "unsupported segment version {} (expected {STORE_VERSION})",
            arena.version()
        )));
    }
    let meta = arena.slice::<u64>(SEG_META).map_err(bad)?;
    if meta.len() != 4 {
        return Err(bad("segment meta has wrong length"));
    }
    let nq = usize::try_from(meta[0]).map_err(|_| bad("segment query count overflow"))?;
    let na = usize::try_from(meta[1]).map_err(|_| bad("segment ad count overflow"))?;
    let ne = usize::try_from(meta[2]).map_err(|_| bad("segment edge count overflow"))?;
    let named = meta[3] != 0;
    if nq > u32::MAX as usize || na > u32::MAX as usize {
        return Err(bad("segment node count exceeds u32 id space"));
    }

    let eq = arena.slice::<u32>(SEG_EDGE_Q).map_err(bad)?;
    let ea = arena.slice::<u32>(SEG_EDGE_A).map_err(bad)?;
    let impr = arena.slice::<u64>(SEG_EDGE_IMPR).map_err(bad)?;
    let clk = arena.slice::<u64>(SEG_EDGE_CLK).map_err(bad)?;
    let ecr = arena.slice::<f64>(SEG_EDGE_ECR).map_err(bad)?;
    if [eq.len(), ea.len(), impr.len(), clk.len(), ecr.len()] != [ne; 5] {
        return Err(bad("segment edge arrays disagree with meta edge count"));
    }
    let queries = arena.slice::<u32>(SEG_QMAP).map_err(bad)?;
    let ads = arena.slice::<u32>(SEG_AMAP).map_err(bad)?;
    if queries.len() != nq || ads.len() != na {
        return Err(bad("segment id maps disagree with meta node counts"));
    }

    let mut b = ClickGraphBuilder::with_capacity(ne);
    if named {
        for (i, name) in unpack_names(&arena, SEG_QNAME_OFFS, SEG_QNAME_BLOB, nq)?
            .into_iter()
            .enumerate()
        {
            if b.intern_query(name).0 != i as u32 {
                return Err(bad(format!("duplicate query name at local id {i}")));
            }
        }
        for (i, name) in unpack_names(&arena, SEG_ANAME_OFFS, SEG_ANAME_BLOB, na)?
            .into_iter()
            .enumerate()
        {
            if b.intern_ad(name).0 != i as u32 {
                return Err(bad(format!("duplicate ad name at local id {i}")));
            }
        }
    }
    b.reserve_queries(nq as u32);
    b.reserve_ads(na as u32);
    for i in 0..ne {
        if eq[i] as usize >= nq || ea[i] as usize >= na {
            return Err(bad(format!(
                "segment edge {i} endpoint ({},{}) out of range",
                eq[i], ea[i]
            )));
        }
        if clk[i] > impr[i] || !ecr[i].is_finite() || ecr[i] < 0.0 {
            return Err(bad(format!("segment edge {i} has invalid weight data")));
        }
        let data = EdgeData {
            impressions: impr[i],
            clicks: clk[i],
            expected_click_rate: ecr[i],
        };
        b.add_edge(QueryId(eq[i]), AdId(ea[i]), data);
    }
    let graph = b.build();
    if graph.n_edges() != ne {
        return Err(bad("segment contains duplicate edges"));
    }
    Ok(Segment {
        graph,
        queries: queries.to_vec(),
        ads: ads.to_vec(),
    })
}

/// Splits a (offsets, blob) name-section pair back into `n` UTF-8 names.
fn unpack_names<'a>(
    arena: &Arena<'a>,
    offs_tag: u64,
    blob_tag: u64,
    n: usize,
) -> io::Result<Vec<&'a str>> {
    let offs = arena.slice::<u64>(offs_tag).map_err(bad)?;
    let blob = arena.require(blob_tag).map_err(bad)?;
    if offs.len() != n + 1 {
        return Err(bad(format!(
            "name offsets have {} entries, expected {}",
            offs.len(),
            n + 1
        )));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (lo, hi) = (offs[i], offs[i + 1]);
        if lo > hi || hi > blob.len() as u64 {
            return Err(bad(format!("name {i} offsets {lo}..{hi} out of bounds")));
        }
        let name = std::str::from_utf8(&blob[lo as usize..hi as usize])
            .map_err(|_| bad(format!("name {i} is not valid UTF-8")))?;
        out.push(name);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeData;
    use crate::fixtures::figure3_graph;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("simrankpp_segments_{name}"))
    }

    fn scattered(nq: u32, na: u32, edges: usize, named: bool) -> ClickGraph {
        let mut b = ClickGraphBuilder::new();
        let mut x: u64 = 0x5eed;
        for _ in 0..edges {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let q = ((x >> 33) % nq as u64) as u32;
            let a = ((x >> 13) % na as u64) as u32;
            if named {
                b.add_named(
                    &format!("q{q}"),
                    &format!("a{a}"),
                    EdgeData::from_clicks(1 + x % 7),
                );
            } else {
                b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1 + x % 7));
            }
        }
        if !named {
            // Leave a few isolated nodes to exercise singleton components.
            b.reserve_queries(nq + 3);
            b.reserve_ads(na + 2);
        }
        b.build()
    }

    fn roundtrip(g: &ClickGraph, target_nodes: usize, name: &str) -> (ClickGraph, usize) {
        let path = tmp(name);
        write_segmented(g, &path, target_nodes).unwrap();
        let mut store = SegmentedStore::open(&path).unwrap();
        let back = store.load_all().unwrap();
        let n = store.n_segments();
        std::fs::remove_file(&path).ok();
        (back, n)
    }

    #[test]
    fn segments_cover_every_node_and_edge() {
        let g = scattered(40, 30, 200, false);
        let segs = component_segments(&g, 16);
        let nq: usize = segs.iter().map(|s| s.graph.n_queries()).sum();
        let na: usize = segs.iter().map(|s| s.graph.n_ads()).sum();
        let ne: usize = segs.iter().map(|s| s.graph.n_edges()).sum();
        assert_eq!(nq, g.n_queries());
        assert_eq!(na, g.n_ads());
        assert_eq!(ne, g.n_edges());
        // Global ids are a permutation of 0..n.
        let mut all_q: Vec<u32> = segs.iter().flat_map(|s| s.queries.clone()).collect();
        all_q.sort_unstable();
        assert_eq!(all_q, (0..g.n_queries() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn roundtrip_nameless_is_bit_for_bit() {
        let g = scattered(40, 30, 200, false);
        let (back, n_segments) = roundtrip(&g, 10, "nameless.seg");
        assert!(n_segments > 1, "want a genuinely multi-segment store");
        assert_eq!(back.fingerprint(), g.fingerprint());
        back.validate().unwrap();
    }

    #[test]
    fn roundtrip_named_is_bit_for_bit() {
        let g = scattered(25, 20, 120, true);
        let (back, _) = roundtrip(&g, 8, "named.seg");
        assert_eq!(back.fingerprint(), g.fingerprint());
        assert_eq!(
            back.query_by_name("q3"),
            g.query_by_name("q3"),
            "name → id mapping must survive the roundtrip"
        );
    }

    #[test]
    fn roundtrip_figure3() {
        let g = figure3_graph();
        let (back, _) = roundtrip(&g, 3, "fig3.seg");
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn single_giant_segment_roundtrips() {
        let g = scattered(40, 30, 200, false);
        let (back, n_segments) = roundtrip(&g, usize::MAX, "giant.seg");
        assert_eq!(n_segments, 1);
        assert_eq!(back.fingerprint(), g.fingerprint());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = ClickGraphBuilder::new().build();
        let (back, n_segments) = roundtrip(&g, 8, "empty.seg");
        assert_eq!(n_segments, 0);
        assert_eq!(back.n_queries(), 0);
        assert_eq!(back.n_ads(), 0);
    }

    #[test]
    fn load_segment_is_bounded_and_self_contained() {
        let g = scattered(40, 30, 200, false);
        let path = tmp("bounded.seg");
        write_segmented(&g, &path, 10).unwrap();
        let mut store = SegmentedStore::open(&path).unwrap();
        for i in 0..store.n_segments() {
            let seg = store.load_segment(i).unwrap();
            seg.graph.validate().unwrap();
            let info = store.segment_info(i);
            assert_eq!(seg.graph.n_edges() as u64, info.n_edges);
            // Every local edge maps to a real global edge with equal data.
            for (q, a, e) in seg.graph.edges() {
                let gq = QueryId(seg.queries[q.index()]);
                let ga = AdId(seg.ads[a.index()]);
                assert_eq!(g.edge(gq, ga), Some(e));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_refuses_corruption() {
        let g = scattered(20, 15, 60, false);
        let path = tmp("hostile.seg");
        write_segmented(&g, &path, 8).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated trailer.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(SegmentedStore::open(&path).is_err());

        // Bad trailer magic.
        let mut bad_magic = good.clone();
        let n = bad_magic.len();
        bad_magic[n - 1] ^= 0xff;
        std::fs::write(&path, &bad_magic).unwrap();
        let err = SegmentedStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("trailer"), "{err}");

        // Manifest offset pointing past the file.
        let mut bad_off = good.clone();
        bad_off[n - 24..n - 16].copy_from_slice(&(good.len() as u64 * 2).to_ne_bytes());
        std::fs::write(&path, &bad_off).unwrap();
        let err = SegmentedStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("bounds"), "{err}");

        // Corrupt byte inside the manifest's section table.
        let mut bad_manifest = good.clone();
        let moff = u64::from_ne_bytes(good[n - 24..n - 16].try_into().unwrap()) as usize;
        bad_manifest[moff + 33] ^= 0x01;
        std::fs::write(&path, &bad_manifest).unwrap();
        assert!(SegmentedStore::open(&path).is_err());

        // Version bump is refused with a clear message.
        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_ne_bytes());
        std::fs::write(&path, &bad_version).unwrap();
        let err = SegmentedStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_segment_refuses_corrupt_blob() {
        let g = scattered(20, 15, 60, false);
        let path = tmp("hostile_blob.seg");
        write_segmented(&g, &path, usize::MAX).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the first segment's section table (right after the
        // 24-byte store header + 32-byte arena header).
        bytes[24 + 32 + 17] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = SegmentedStore::open(&path).unwrap();
        assert!(store.load_segment(0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
