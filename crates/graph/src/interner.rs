//! String interning for query and ad display names.
//!
//! The click graph's algorithms work on dense `u32` ids; the interner maps
//! between those ids and the human-readable query strings / ad identifiers,
//! exactly once per distinct string.

use serde::{Deserialize, Serialize};
use simrankpp_util::FxHashMap;

/// A bidirectional string ↔ dense-id map.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing id if already present).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id for `name` without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name for `id`, if in range.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the reverse index (needed after deserialization, where the
    /// index is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

/// Two interners are equal when they hold the same names in the same id
/// order; the derived reverse index is a cache and doesn't participate.
impl PartialEq for Interner {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for Interner {}

impl FromIterator<String> for Interner {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut interner = Interner::new();
        for name in iter {
            interner.intern(&name);
        }
        interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_once() {
        let mut i = Interner::new();
        let a = i.intern("camera");
        let b = i.intern("camera");
        let c = i.intern("pc");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn bidirectional_lookup() {
        let mut i = Interner::new();
        let id = i.intern("digital camera");
        assert_eq!(i.get("digital camera"), Some(id));
        assert_eq!(i.name(id), Some("digital camera"));
        assert_eq!(i.get("tv"), None);
        assert_eq!(i.name(999), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let got: Vec<_> = i.iter().map(|(id, n)| (id, n.to_owned())).collect();
        assert_eq!(got, vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]);
    }

    #[test]
    fn rebuild_index_after_clone_of_names() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let mut copy = Interner {
            names: i.names.clone(),
            index: FxHashMap::default(),
        };
        assert_eq!(copy.get("x"), None); // index empty before rebuild
        copy.rebuild_index();
        assert_eq!(copy.get("x"), Some(0));
        assert_eq!(copy.get("y"), Some(1));
    }

    #[test]
    fn from_iterator() {
        let i: Interner = ["p", "q", "p"].iter().map(|s| s.to_string()).collect();
        assert_eq!(i.len(), 2);
    }
}
