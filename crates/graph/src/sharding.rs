//! Component sharding: carving the click graph into independent score blocks.
//!
//! §9.2 observes the click graph "consists of one huge connected component
//! and several smaller subgraphs". SimRank similarity (uniform *and*
//! weighted, §4/§8.2) propagates exclusively along edges, so two nodes in
//! different connected components have score exactly 0 at every iteration —
//! the only nonzero base-case entries are the diagonal `s(x,x) = 1`, and a
//! propagation step only mixes scores of nodes with a common neighbor.
//! Consequently the score matrix is block-diagonal over components, and the
//! engine can run **independently per component** and stitch the blocks back
//! together without changing a single value. That is what a [`Sharding`]
//! describes: a list of [`Shard`]s — induced subgraphs with old↔new id
//! remaps — that the engine layer (`simrankpp-core::engine::sharded`)
//! schedules across threads, largest shard first.
//!
//! Why decomposition is *exact* for SimRank, in detail:
//!
//! 1. every per-edge transition factor used by either walk is local — the
//!    uniform factor `1/N(q)` depends only on `q`'s degree, the weighted
//!    factor `spread(i)·normalized_weight(q,i)` only on the weights of edges
//!    incident to `q` and `i` — and an induced component subgraph preserves
//!    *all* edges incident to its members;
//! 2. a propagation step for pair `(a, b)` reads only pairs of neighbors of
//!    `a` and `b`, which lie in the same component;
//! 3. the remap is monotone (ids are assigned in ascending parent order), so
//!    sorted CSR neighbor lists stay in the same relative order and the
//!    shard-local iteration replays the global one contribution for
//!    contribution.
//!
//! [`Sharding::from_components`] is the exact decomposition. The partition
//! crate adds an *approximate* extraction-based sharding that further carves
//! the giant component (`simrankpp_partition::extraction_sharding`); it cuts
//! edges and is opt-in.

use crate::components::{connected_components, Components};
use crate::graph::ClickGraph;
use crate::ids::{AdId, NodeRef, QueryId};
use crate::subgraph::{induced_subgraph, SubgraphMapping};

/// One independent score block: an induced subgraph plus its id remap.
#[derive(Debug)]
pub struct Shard {
    /// The induced subgraph with re-densified ids.
    pub graph: ClickGraph,
    /// Parent↔shard id correspondence.
    pub mapping: SubgraphMapping,
    /// The component id this shard was carved from, when component-derived.
    pub component: Option<u32>,
}

impl Shard {
    /// Total node count (queries + ads) — the largest-first scheduling key.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }
}

/// A decomposition of one click graph into independent score blocks.
#[derive(Debug)]
pub struct Sharding {
    /// The shards, ordered largest-first (by node count) so a greedy
    /// scheduler starts the long poles early.
    pub shards: Vec<Shard>,
    /// Whether per-shard SimRank provably equals whole-graph SimRank
    /// (`true` for component sharding, `false` for extraction sharding,
    /// which cuts edges).
    pub exact: bool,
    /// Components that were skipped because they cannot hold an off-diagonal
    /// same-side pair (at most one query and at most one ad).
    pub n_trivial: usize,
    n_queries: usize,
    n_ads: usize,
}

impl Sharding {
    /// The exact decomposition: one shard per connected component that can
    /// hold at least one same-side pair (≥ 2 queries or ≥ 2 ads). Components
    /// with at most one node per side are skipped — they cannot contribute
    /// any off-diagonal score, so the stitched result is unaffected.
    pub fn from_components(g: &ClickGraph) -> Sharding {
        let components = connected_components(g);
        Self::from_labels(g, &components)
    }

    /// As [`Sharding::from_components`] with a precomputed labeling (the
    /// caller may already have run `connected_components`).
    pub fn from_labels(g: &ClickGraph, components: &Components) -> Sharding {
        Self::from_labels_filtered(g, components, |_| true)
    }

    /// The incremental-update decomposition: one shard per **dirty**
    /// non-trivial component of the updated graph (see
    /// [`crate::delta::GraphDelta::dirty_components`]). Clean components get
    /// no shard — the engine reuses their score blocks from the previous
    /// run — and `n_trivial` counts only trivial *dirty* components.
    pub fn from_dirty(g: &ClickGraph, dirty: &crate::delta::DirtyComponents) -> Sharding {
        Self::from_labels_filtered(g, &dirty.components, |id| dirty.is_dirty(id))
    }

    fn from_labels_filtered(
        g: &ClickGraph,
        components: &Components,
        keep: impl Fn(u32) -> bool,
    ) -> Sharding {
        let sizes = components.sizes();
        let mut shards = Vec::new();
        let mut n_trivial = 0usize;
        // Collect members per component in one pass (ascending parent id on
        // each side — the monotone order `induced_subgraph` needs to keep
        // CSR neighbor lists in the same relative order as the parent's).
        let mut members: Vec<Vec<NodeRef>> = sizes
            .iter()
            .map(|&(q, a)| Vec::with_capacity(q + a))
            .collect();
        for (i, &l) in components.query_label.iter().enumerate() {
            members[l as usize].push(NodeRef::Query(QueryId(i as u32)));
        }
        for (i, &l) in components.ad_label.iter().enumerate() {
            members[l as usize].push(NodeRef::Ad(AdId(i as u32)));
        }
        for (id, nodes) in members.into_iter().enumerate() {
            if !keep(id as u32) {
                continue;
            }
            let (q, a) = sizes[id];
            if q < 2 && a < 2 {
                n_trivial += 1;
                continue;
            }
            let (graph, mapping) = induced_subgraph(g, &nodes);
            shards.push(Shard {
                graph,
                mapping,
                component: Some(id as u32),
            });
        }
        let mut sharding = Sharding {
            shards,
            exact: true,
            n_trivial,
            n_queries: g.n_queries(),
            n_ads: g.n_ads(),
        };
        sharding.sort_largest_first();
        sharding
    }

    /// Assembles a sharding from externally carved shards (the partition
    /// crate's extraction path). `exact` must describe whether the shards
    /// preserve every edge incident to their members.
    pub fn from_shards(g: &ClickGraph, shards: Vec<Shard>, exact: bool) -> Sharding {
        debug_assert!(
            shards.iter().all(|s| {
                s.mapping.queries.windows(2).all(|w| w[0] < w[1])
                    && s.mapping.ads.windows(2).all(|w| w[0] < w[1])
            }),
            "shard id remaps must be monotone (ascending parent ids): the \
             engine's sorted stitch relies on remapped pair lists staying \
             key-sorted"
        );
        let mut sharding = Sharding {
            shards,
            exact,
            n_trivial: 0,
            n_queries: g.n_queries(),
            n_ads: g.n_ads(),
        };
        sharding.sort_largest_first();
        sharding
    }

    fn sort_largest_first(&mut self) {
        self.shards.sort_by_key(|s| std::cmp::Reverse(s.n_nodes()));
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Query count of the parent graph (the stitched matrix dimension).
    pub fn parent_n_queries(&self) -> usize {
        self.n_queries
    }

    /// Ad count of the parent graph.
    pub fn parent_n_ads(&self) -> usize {
        self.n_ads
    }

    /// Checks that no parent node appears in two shards (the precondition
    /// for the engine's duplicate-rejecting stitch). O(nodes).
    pub fn validate_disjoint(&self) -> Result<(), String> {
        let mut q_seen = vec![false; self.n_queries];
        let mut a_seen = vec![false; self.n_ads];
        for (i, shard) in self.shards.iter().enumerate() {
            for &pq in &shard.mapping.queries {
                if pq.index() >= self.n_queries {
                    return Err(format!("shard {i}: query {pq} out of parent range"));
                }
                if std::mem::replace(&mut q_seen[pq.index()], true) {
                    return Err(format!("query {pq} appears in two shards"));
                }
            }
            for &pa in &shard.mapping.ads {
                if pa.index() >= self.n_ads {
                    return Err(format!("shard {i}: ad {pa} out of parent range"));
                }
                if std::mem::replace(&mut a_seen[pa.index()], true) {
                    return Err(format!("ad {pa} appears in two shards"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClickGraphBuilder;
    use crate::edge::EdgeData;
    use crate::fixtures::figure3_graph;

    #[test]
    fn figure3_sharding_splits_the_two_components() {
        let g = figure3_graph();
        let s = Sharding::from_components(&g);
        assert!(s.exact);
        assert_eq!(s.n_shards(), 2);
        assert_eq!(s.n_trivial, 0);
        // Largest-first: {pc, camera, digital camera, tv} × {hp, bestbuy}.
        assert_eq!(s.shards[0].graph.n_queries(), 4);
        assert_eq!(s.shards[0].graph.n_ads(), 2);
        assert_eq!(s.shards[1].graph.n_queries(), 1);
        assert_eq!(s.shards[1].graph.n_ads(), 2);
        s.validate_disjoint().unwrap();
    }

    #[test]
    fn from_dirty_shards_only_dirty_components() {
        use crate::delta::GraphDelta;
        // Touch only the big component: the flower component stays clean and
        // gets no shard.
        let g = figure3_graph();
        let mut d = GraphDelta::new();
        d.upsert(
            g.query_by_name("camera").unwrap(),
            g.ad_by_name("hp.com").unwrap(),
            EdgeData::from_clicks(1),
        );
        let g2 = d.apply(&g);
        let dirty = d.dirty_components(&g2);
        let s = Sharding::from_dirty(&g2, &dirty);
        assert!(s.exact);
        assert_eq!(s.n_shards(), 1);
        assert_eq!(s.n_trivial, 0);
        assert_eq!(s.shards[0].graph.n_queries(), 4);
        s.validate_disjoint().unwrap();
        // An empty delta shards nothing.
        let none = GraphDelta::new();
        let clean = none.dirty_components(&g2);
        assert_eq!(Sharding::from_dirty(&g2, &clean).n_shards(), 0);
    }

    #[test]
    fn remap_round_trips_shard_local_to_global_and_back() {
        let g = figure3_graph();
        let s = Sharding::from_components(&g);
        for shard in &s.shards {
            for q in shard.graph.queries() {
                let parent = shard.mapping.to_parent_query(q);
                assert_eq!(shard.mapping.to_sub_query(parent), Some(q));
                // Names travel with the remap.
                assert_eq!(shard.graph.query_name(q), g.query_name(parent));
            }
            for a in shard.graph.ads() {
                let parent = shard.mapping.to_parent_ad(a);
                assert_eq!(shard.mapping.to_sub_ad(parent), Some(a));
            }
        }
    }

    #[test]
    fn remap_is_monotone_per_shard() {
        // Monotone remaps preserve sorted CSR order — the property the
        // bit-exactness of sharded propagation rests on.
        let g = figure3_graph();
        let s = Sharding::from_components(&g);
        for shard in &s.shards {
            assert!(shard.mapping.queries.windows(2).all(|w| w[0] < w[1]));
            assert!(shard.mapping.ads.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn trivial_components_are_skipped() {
        // q0-a0 pair component plus isolated q1, q2, a1: the isolated nodes
        // are trivial, and the 1×1 edge component holds no same-side pair.
        let mut b = ClickGraphBuilder::new();
        b.reserve_queries(3);
        b.reserve_ads(2);
        b.add_edge(QueryId(0), AdId(0), EdgeData::from_clicks(1));
        let g = b.build();
        let s = Sharding::from_components(&g);
        assert_eq!(s.n_shards(), 0);
        assert_eq!(s.n_trivial, 4);
        assert_eq!(s.parent_n_queries(), 3);
        assert_eq!(s.parent_n_ads(), 2);
    }

    #[test]
    fn singleton_query_with_ad_pair_is_kept() {
        // One query clicking two ads: no query pair, but an ad pair exists,
        // so the component must become a shard.
        let mut b = ClickGraphBuilder::new();
        b.add_edge(QueryId(0), AdId(0), EdgeData::from_clicks(1));
        b.add_edge(QueryId(0), AdId(1), EdgeData::from_clicks(1));
        let g = b.build();
        let s = Sharding::from_components(&g);
        assert_eq!(s.n_shards(), 1);
        assert_eq!(s.shards[0].graph.n_ads(), 2);
    }

    #[test]
    fn empty_graph_has_no_shards() {
        let g = ClickGraphBuilder::new().build();
        let s = Sharding::from_components(&g);
        assert_eq!(s.n_shards(), 0);
        assert_eq!(s.n_trivial, 0);
        s.validate_disjoint().unwrap();
    }

    #[test]
    fn validate_disjoint_catches_overlap() {
        let g = figure3_graph();
        let mut s = Sharding::from_components(&g);
        // Duplicate the first shard: every node now appears twice.
        let dup = Shard {
            graph: s.shards[0].graph.clone(),
            mapping: s.shards[0].mapping.clone(),
            component: s.shards[0].component,
        };
        s.shards.push(dup);
        assert!(s.validate_disjoint().is_err());
    }

    #[test]
    fn shard_edges_match_parent_component_edges() {
        let g = figure3_graph();
        let s = Sharding::from_components(&g);
        let total_edges: usize = s.shards.iter().map(|sh| sh.graph.n_edges()).sum();
        assert_eq!(total_edges, g.n_edges(), "component shards keep all edges");
        for shard in &s.shards {
            for (q, a, e) in shard.graph.edges() {
                let pq = shard.mapping.to_parent_query(q);
                let pa = shard.mapping.to_parent_ad(a);
                assert_eq!(g.edge(pq, pa), Some(e));
            }
        }
    }
}
