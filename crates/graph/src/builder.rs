//! Accumulating click-graph builder.
//!
//! The back-end observes (query, ad, click/impression) events over a
//! collection window; repeated observations of the same edge accumulate via
//! [`EdgeData::merge`]. `build()` freezes everything into the immutable CSR
//! [`ClickGraph`].

use crate::edge::EdgeData;
use crate::graph::ClickGraph;
use crate::ids::{AdId, QueryId};
use crate::interner::Interner;
use simrankpp_util::FxHashMap;

/// Mutable accumulator for click-graph edges.
#[derive(Debug, Default, Clone)]
pub struct ClickGraphBuilder {
    edges: FxHashMap<(u32, u32), EdgeData>,
    n_queries: u32,
    n_ads: u32,
    query_names: Option<Interner>,
    ad_names: Option<Interner>,
}

impl ClickGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the edge accumulator.
    pub fn with_capacity(edges: usize) -> Self {
        let mut b = Self::default();
        b.edges.reserve(edges);
        b
    }

    /// Thaws an immutable graph back into a builder: same node counts, names
    /// and edges, ready for further mutation. This is the substrate of
    /// [`crate::delta::GraphDelta::apply`] — a delta replays on top of the
    /// thawed builder and refreezes. `build()` on an untouched thaw
    /// reproduces the graph exactly (CSR order is id-sorted either way).
    pub fn from_graph(g: &ClickGraph) -> ClickGraphBuilder {
        let mut b = ClickGraphBuilder::with_capacity(g.n_edges());
        b.n_queries = g.n_queries() as u32;
        b.n_ads = g.n_ads() as u32;
        b.query_names = g.query_interner().cloned();
        b.ad_names = g.ad_interner().cloned();
        for (q, a, e) in g.edges() {
            b.edges.insert((q.0, a.0), *e);
        }
        b
    }

    /// Removes the accumulated edge `(q, α)`, returning whether it existed.
    /// Node counts never shrink: ids stay dense and stable, the endpoints
    /// simply become lower-degree (possibly isolated) nodes.
    pub fn remove_edge(&mut self, q: QueryId, a: AdId) -> bool {
        self.edges.remove(&(q.0, a.0)).is_some()
    }

    /// Looks up an interned query name without inserting.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.query_names.as_ref()?.get(name).map(QueryId)
    }

    /// Looks up an interned ad name without inserting.
    pub fn ad_id(&self, name: &str) -> Option<AdId> {
        self.ad_names.as_ref()?.get(name).map(AdId)
    }

    /// Adds (or accumulates onto) the edge `(q, α)` using explicit ids.
    /// Node counts grow to cover the largest id seen.
    pub fn add_edge(&mut self, q: QueryId, a: AdId, data: EdgeData) {
        self.n_queries = self.n_queries.max(q.0 + 1);
        self.n_ads = self.n_ads.max(a.0 + 1);
        self.edges
            .entry((q.0, a.0))
            .and_modify(|e| e.merge(&data))
            .or_insert(data);
    }

    /// Adds an edge by display names, interning them. Mixing `add_named` and
    /// raw `add_edge` in one builder is allowed only if the raw ids were
    /// produced by [`ClickGraphBuilder::intern_query`] / [`ClickGraphBuilder::intern_ad`].
    pub fn add_named(&mut self, query: &str, ad: &str, data: EdgeData) -> (QueryId, AdId) {
        let q = self.intern_query(query);
        let a = self.intern_ad(ad);
        self.add_edge(q, a, data);
        (q, a)
    }

    /// Interns a query name (creating an isolated node if no edge follows).
    pub fn intern_query(&mut self, name: &str) -> QueryId {
        let id = self
            .query_names
            .get_or_insert_with(Interner::new)
            .intern(name);
        self.n_queries = self.n_queries.max(id + 1);
        QueryId(id)
    }

    /// Interns an ad name (creating an isolated node if no edge follows).
    pub fn intern_ad(&mut self, name: &str) -> AdId {
        let id = self.ad_names.get_or_insert_with(Interner::new).intern(name);
        self.n_ads = self.n_ads.max(id + 1);
        AdId(id)
    }

    /// Ensures the graph has at least `n` query nodes (isolated nodes allowed).
    pub fn reserve_queries(&mut self, n: u32) {
        self.n_queries = self.n_queries.max(n);
    }

    /// Ensures the graph has at least `n` ad nodes.
    pub fn reserve_ads(&mut self, n: u32) {
        self.n_ads = self.n_ads.max(n);
    }

    /// Number of distinct edges accumulated so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into the immutable CSR graph.
    pub fn build(self) -> ClickGraph {
        let nq = self.n_queries as usize;
        let na = self.n_ads as usize;

        // Sort edges query-major then ad for the forward CSR.
        let mut fwd: Vec<((u32, u32), EdgeData)> = self.edges.into_iter().collect();
        fwd.sort_unstable_by_key(|&((q, a), _)| (q, a));

        let mut q_offsets = vec![0u32; nq + 1];
        for &((q, _), _) in &fwd {
            q_offsets[q as usize + 1] += 1;
        }
        for i in 0..nq {
            q_offsets[i + 1] += q_offsets[i];
        }
        let q_nbrs: Vec<AdId> = fwd.iter().map(|&((_, a), _)| AdId(a)).collect();
        let q_edges: Vec<EdgeData> = fwd.iter().map(|&(_, e)| e).collect();

        // Transpose for the backward CSR (counting sort by ad id keeps the
        // query-major order stable, so neighbor lists stay sorted).
        let mut a_offsets = vec![0u32; na + 1];
        for &((_, a), _) in &fwd {
            a_offsets[a as usize + 1] += 1;
        }
        for i in 0..na {
            a_offsets[i + 1] += a_offsets[i];
        }
        let mut cursor = a_offsets.clone();
        let mut a_nbrs = vec![QueryId(0); fwd.len()];
        let mut a_edges = vec![EdgeData::default(); fwd.len()];
        for &((q, a), e) in &fwd {
            let slot = cursor[a as usize] as usize;
            a_nbrs[slot] = QueryId(q);
            a_edges[slot] = e;
            cursor[a as usize] += 1;
        }

        ClickGraph {
            q_offsets,
            q_nbrs,
            q_edges,
            a_offsets,
            a_nbrs,
            a_edges,
            query_names: self.query_names,
            ad_names: self.ad_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_accumulate() {
        let mut b = ClickGraphBuilder::new();
        b.add_edge(QueryId(0), AdId(0), EdgeData::new(10, 1, 0.1));
        b.add_edge(QueryId(0), AdId(0), EdgeData::new(10, 3, 0.3));
        let g = b.build();
        assert_eq!(g.n_edges(), 1);
        let e = g.edge(QueryId(0), AdId(0)).unwrap();
        assert_eq!(e.impressions, 20);
        assert_eq!(e.clicks, 4);
        assert!((e.expected_click_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_survive() {
        let mut b = ClickGraphBuilder::new();
        b.reserve_queries(5);
        b.reserve_ads(3);
        b.add_edge(QueryId(1), AdId(1), EdgeData::from_clicks(1));
        let g = b.build();
        assert_eq!(g.n_queries(), 5);
        assert_eq!(g.n_ads(), 3);
        assert_eq!(g.query_degree(QueryId(4)), 0);
        g.validate().unwrap();
    }

    #[test]
    fn named_nodes_resolve() {
        let mut b = ClickGraphBuilder::new();
        let (q, a) = b.add_named("flower", "teleflora.com", EdgeData::from_clicks(2));
        let g = b.build();
        assert_eq!(g.query_name(q), Some("flower"));
        assert_eq!(g.ad_name(a), Some("teleflora.com"));
        assert_eq!(g.query_by_name("flower"), Some(q));
    }

    #[test]
    fn transpose_is_consistent_on_random_graph() {
        // Deterministic scatter of 500 edges over 40x30 nodes.
        let mut b = ClickGraphBuilder::new();
        let mut x: u64 = 12345;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let q = ((x >> 33) % 40) as u32;
            let a = ((x >> 13) % 30) as u32;
            b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(1 + (x % 5)));
        }
        let g = b.build();
        g.validate().unwrap();
        // Spot-check both directions agree.
        for (q, a, e) in g.edges() {
            let (qs, es) = g.queries_of(a);
            let idx = qs.binary_search(&q).unwrap();
            assert_eq!(&es[idx], e);
        }
    }

    #[test]
    fn with_capacity_builds_same_graph() {
        let mut b = ClickGraphBuilder::with_capacity(16);
        b.add_edge(QueryId(0), AdId(0), EdgeData::from_clicks(1));
        assert_eq!(b.n_edges(), 1);
        let g = b.build();
        assert_eq!(g.n_edges(), 1);
    }
}
