//! Connected components of the bipartite click graph.
//!
//! §9.2: the Yahoo! click graph "consists of one huge connected component and
//! several smaller subgraphs". The partition crate carves the giant component
//! further; this module finds the components in the first place (BFS over the
//! union of both sides).

use crate::graph::ClickGraph;
use crate::ids::{AdId, NodeRef, QueryId};
use std::collections::VecDeque;

/// Component labeling of all nodes.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per query node.
    pub query_label: Vec<u32>,
    /// Component id per ad node.
    pub ad_label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Component id of `node`.
    pub fn label(&self, node: NodeRef) -> u32 {
        match node {
            NodeRef::Query(q) => self.query_label[q.index()],
            NodeRef::Ad(a) => self.ad_label[a.index()],
        }
    }

    /// Sizes (query count, ad count) per component id.
    pub fn sizes(&self) -> Vec<(usize, usize)> {
        let mut sizes = vec![(0usize, 0usize); self.count];
        for &l in &self.query_label {
            sizes[l as usize].0 += 1;
        }
        for &l in &self.ad_label {
            sizes[l as usize].1 += 1;
        }
        sizes
    }

    /// The id of the component with the most nodes (queries + ads);
    /// `None` on an empty graph.
    pub fn largest(&self) -> Option<u32> {
        self.sizes()
            .iter()
            .enumerate()
            .max_by_key(|(_, &(q, a))| q + a)
            .map(|(i, _)| i as u32)
    }

    /// The member nodes of component `id`.
    pub fn members(&self, id: u32) -> Vec<NodeRef> {
        let mut out = Vec::new();
        for (i, &l) in self.query_label.iter().enumerate() {
            if l == id {
                out.push(NodeRef::Query(QueryId(i as u32)));
            }
        }
        for (i, &l) in self.ad_label.iter().enumerate() {
            if l == id {
                out.push(NodeRef::Ad(AdId(i as u32)));
            }
        }
        out
    }
}

/// Labels every node with its connected component (BFS; isolated nodes each
/// form their own component).
pub fn connected_components(g: &ClickGraph) -> Components {
    const UNSET: u32 = u32::MAX;
    let mut query_label = vec![UNSET; g.n_queries()];
    let mut ad_label = vec![UNSET; g.n_ads()];
    let mut count = 0u32;
    let mut queue: VecDeque<NodeRef> = VecDeque::new();

    let start_from = |seed: NodeRef,
                      query_label: &mut Vec<u32>,
                      ad_label: &mut Vec<u32>,
                      count: &mut u32,
                      queue: &mut VecDeque<NodeRef>| {
        let label = *count;
        *count += 1;
        match seed {
            NodeRef::Query(q) => query_label[q.index()] = label,
            NodeRef::Ad(a) => ad_label[a.index()] = label,
        }
        queue.push_back(seed);
        while let Some(node) = queue.pop_front() {
            match node {
                NodeRef::Query(q) => {
                    let (ads, _) = g.ads_of(q);
                    for &a in ads {
                        if ad_label[a.index()] == UNSET {
                            ad_label[a.index()] = label;
                            queue.push_back(NodeRef::Ad(a));
                        }
                    }
                }
                NodeRef::Ad(a) => {
                    let (qs, _) = g.queries_of(a);
                    for &q in qs {
                        if query_label[q.index()] == UNSET {
                            query_label[q.index()] = label;
                            queue.push_back(NodeRef::Query(q));
                        }
                    }
                }
            }
        }
    };

    for qi in 0..g.n_queries() {
        if query_label[qi] == UNSET {
            start_from(
                NodeRef::Query(QueryId(qi as u32)),
                &mut query_label,
                &mut ad_label,
                &mut count,
                &mut queue,
            );
        }
    }
    for ai in 0..g.n_ads() {
        if ad_label[ai] == UNSET {
            start_from(
                NodeRef::Ad(AdId(ai as u32)),
                &mut query_label,
                &mut ad_label,
                &mut count,
                &mut queue,
            );
        }
    }

    Components {
        query_label,
        ad_label,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClickGraphBuilder;
    use crate::edge::EdgeData;
    use crate::fixtures::figure3_graph;

    #[test]
    fn figure3_has_two_components() {
        // {pc, camera, digital camera, tv} × {hp, bestbuy} plus
        // {flower} × {teleflora, orchids}.
        let g = figure3_graph();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        let flower = g.query_by_name("flower").unwrap();
        let pc = g.query_by_name("pc").unwrap();
        let tv = g.query_by_name("tv").unwrap();
        assert_ne!(c.label(NodeRef::Query(flower)), c.label(NodeRef::Query(pc)));
        assert_eq!(c.label(NodeRef::Query(tv)), c.label(NodeRef::Query(pc)));
    }

    #[test]
    fn sizes_and_largest() {
        let g = figure3_graph();
        let c = connected_components(&g);
        let sizes = c.sizes();
        let total_q: usize = sizes.iter().map(|s| s.0).sum();
        let total_a: usize = sizes.iter().map(|s| s.1).sum();
        assert_eq!(total_q, g.n_queries());
        assert_eq!(total_a, g.n_ads());
        let big = c.largest().unwrap();
        assert_eq!(sizes[big as usize], (4, 2));
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut b = ClickGraphBuilder::new();
        b.reserve_queries(3);
        b.reserve_ads(2);
        b.add_edge(
            crate::ids::QueryId(0),
            crate::ids::AdId(0),
            EdgeData::from_clicks(1),
        );
        let g = b.build();
        let c = connected_components(&g);
        // Component 0: q0-a0. Then q1, q2, a1 are singletons.
        assert_eq!(c.count, 4);
    }

    #[test]
    fn members_cover_component() {
        let g = figure3_graph();
        let c = connected_components(&g);
        let flower = g.query_by_name("flower").unwrap();
        let label = c.label(NodeRef::Query(flower));
        let members = c.members(label);
        assert_eq!(members.len(), 3); // flower + 2 ads
    }

    #[test]
    fn empty_graph() {
        let g = ClickGraphBuilder::new().build();
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert!(c.largest().is_none());
    }
}
