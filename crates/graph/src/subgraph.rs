//! Induced subgraph extraction with id remapping.
//!
//! The evaluation dataset (§9.2 / Table 5) is five subgraphs carved out of
//! the giant component by local partitioning. After carving, node ids are
//! re-densified; [`SubgraphMapping`] remembers the correspondence back to the
//! parent graph so evaluation queries can be located in the subgraphs.

use crate::builder::ClickGraphBuilder;
use crate::graph::ClickGraph;
use crate::ids::{AdId, NodeRef, QueryId};
use simrankpp_util::FxHashMap;

/// Id correspondence between a parent graph and an extracted subgraph.
#[derive(Debug, Clone, Default)]
pub struct SubgraphMapping {
    /// Parent query id per subgraph query id (indexed by the new id).
    pub queries: Vec<QueryId>,
    /// Parent ad id per subgraph ad id.
    pub ads: Vec<AdId>,
    query_rev: FxHashMap<u32, u32>,
    ad_rev: FxHashMap<u32, u32>,
}

impl SubgraphMapping {
    /// The parent id of subgraph query `q`.
    pub fn to_parent_query(&self, q: QueryId) -> QueryId {
        self.queries[q.index()]
    }

    /// The parent id of subgraph ad `a`.
    pub fn to_parent_ad(&self, a: AdId) -> AdId {
        self.ads[a.index()]
    }

    /// The subgraph id of parent query `q`, if included.
    pub fn to_sub_query(&self, q: QueryId) -> Option<QueryId> {
        self.query_rev.get(&q.0).copied().map(QueryId)
    }

    /// The subgraph id of parent ad `a`, if included.
    pub fn to_sub_ad(&self, a: AdId) -> Option<AdId> {
        self.ad_rev.get(&a.0).copied().map(AdId)
    }
}

/// Extracts the subgraph induced by `nodes`: every edge of `g` whose both
/// endpoints are in the set survives. Display names carry over when present.
pub fn induced_subgraph(g: &ClickGraph, nodes: &[NodeRef]) -> (ClickGraph, SubgraphMapping) {
    let mut mapping = SubgraphMapping::default();
    for &node in nodes {
        match node {
            NodeRef::Query(q) => {
                if !mapping.query_rev.contains_key(&q.0) {
                    let new_id = mapping.queries.len() as u32;
                    mapping.query_rev.insert(q.0, new_id);
                    mapping.queries.push(q);
                }
            }
            NodeRef::Ad(a) => {
                if !mapping.ad_rev.contains_key(&a.0) {
                    let new_id = mapping.ads.len() as u32;
                    mapping.ad_rev.insert(a.0, new_id);
                    mapping.ads.push(a);
                }
            }
        }
    }

    let mut b = ClickGraphBuilder::new();
    let has_names = g.query_interner().is_some() && g.ad_interner().is_some();
    if has_names {
        // Pre-intern in new-id order so names line up with remapped ids.
        for &pq in &mapping.queries {
            b.intern_query(g.query_name(pq).unwrap_or(""));
        }
        for &pa in &mapping.ads {
            b.intern_ad(g.ad_name(pa).unwrap_or(""));
        }
    } else {
        b.reserve_queries(mapping.queries.len() as u32);
        b.reserve_ads(mapping.ads.len() as u32);
    }

    for (new_q, &parent_q) in mapping.queries.iter().enumerate() {
        let (ads, edges) = g.ads_of(parent_q);
        for (&pa, e) in ads.iter().zip(edges) {
            if let Some(&new_a) = mapping.ad_rev.get(&pa.0) {
                b.add_edge(QueryId(new_q as u32), AdId(new_a), *e);
            }
        }
    }

    let sub = b.build();
    debug_assert!(sub.validate().is_ok());
    (sub, mapping)
}

/// Returns a copy of `g` with the listed `(query, ad)` edges removed
/// (node set and names unchanged). Used by the §9.3 desirability experiment,
/// which deletes the direct-evidence edges between a query and its
/// candidates' ads.
pub fn remove_edges(g: &ClickGraph, remove: &[(QueryId, AdId)]) -> ClickGraph {
    let removed: FxHashMap<(u32, u32), ()> =
        remove.iter().map(|&(q, a)| ((q.0, a.0), ())).collect();
    let mut b = ClickGraphBuilder::new();
    if g.query_interner().is_some() && g.ad_interner().is_some() {
        for q in g.queries() {
            b.intern_query(g.query_name(q).unwrap_or(""));
        }
        for a in g.ads() {
            b.intern_ad(g.ad_name(a).unwrap_or(""));
        }
    } else {
        b.reserve_queries(g.n_queries() as u32);
        b.reserve_ads(g.n_ads() as u32);
    }
    for (q, a, e) in g.edges() {
        if !removed.contains_key(&(q.0, a.0)) {
            b.add_edge(q, a, *e);
        }
    }
    let out = b.build();
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3_graph;

    #[test]
    fn extract_camera_cluster() {
        let g = figure3_graph();
        let nodes = vec![
            NodeRef::Query(g.query_by_name("camera").unwrap()),
            NodeRef::Query(g.query_by_name("digital camera").unwrap()),
            NodeRef::Ad(g.ad_by_name("hp.com").unwrap()),
            NodeRef::Ad(g.ad_by_name("bestbuy.com").unwrap()),
        ];
        let (sub, mapping) = induced_subgraph(&g, &nodes);
        assert_eq!(sub.n_queries(), 2);
        assert_eq!(sub.n_ads(), 2);
        assert_eq!(sub.n_edges(), 4); // K2,2
                                      // Names carried over.
        assert!(sub.query_by_name("camera").is_some());
        // Mapping round-trips.
        let cam_sub = sub.query_by_name("camera").unwrap();
        let cam_parent = mapping.to_parent_query(cam_sub);
        assert_eq!(g.query_name(cam_parent), Some("camera"));
        assert_eq!(mapping.to_sub_query(cam_parent), Some(cam_sub));
    }

    #[test]
    fn edges_to_outside_are_dropped() {
        let g = figure3_graph();
        // pc + hp.com only: camera's edges to hp must not survive.
        let nodes = vec![
            NodeRef::Query(g.query_by_name("pc").unwrap()),
            NodeRef::Ad(g.ad_by_name("hp.com").unwrap()),
        ];
        let (sub, _) = induced_subgraph(&g, &nodes);
        assert_eq!(sub.n_edges(), 1);
        assert_eq!(sub.n_queries(), 1);
        assert_eq!(sub.n_ads(), 1);
    }

    #[test]
    fn empty_node_set() {
        let g = figure3_graph();
        let (sub, mapping) = induced_subgraph(&g, &[]);
        assert_eq!(sub.n_edges(), 0);
        assert!(mapping.queries.is_empty());
    }

    #[test]
    fn duplicate_nodes_deduplicated() {
        let g = figure3_graph();
        let pc = NodeRef::Query(g.query_by_name("pc").unwrap());
        let (sub, mapping) = induced_subgraph(&g, &[pc, pc]);
        assert_eq!(sub.n_queries(), 1);
        assert_eq!(mapping.queries.len(), 1);
    }

    #[test]
    fn remove_edges_drops_only_listed() {
        let g = figure3_graph();
        let camera = g.query_by_name("camera").unwrap();
        let hp = g.ad_by_name("hp.com").unwrap();
        let g2 = remove_edges(&g, &[(camera, hp)]);
        assert_eq!(g2.n_edges(), g.n_edges() - 1);
        assert_eq!(g2.n_queries(), g.n_queries());
        let camera2 = g2.query_by_name("camera").unwrap();
        let hp2 = g2.ad_by_name("hp.com").unwrap();
        assert!(!g2.has_edge(camera2, hp2));
        // Everything else intact.
        let bb2 = g2.ad_by_name("bestbuy.com").unwrap();
        assert!(g2.has_edge(camera2, bb2));
    }

    #[test]
    fn remove_edges_empty_list_is_identity() {
        let g = figure3_graph();
        let g2 = remove_edges(&g, &[]);
        assert_eq!(g2.n_edges(), g.n_edges());
    }

    #[test]
    fn unmapped_parent_returns_none() {
        let g = figure3_graph();
        let pc = NodeRef::Query(g.query_by_name("pc").unwrap());
        let (_, mapping) = induced_subgraph(&g, &[pc]);
        let tv = g.query_by_name("tv").unwrap();
        assert!(mapping.to_sub_query(tv).is_none());
    }
}
