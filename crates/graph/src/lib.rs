//! Bipartite click-graph substrate for the Simrank++ reproduction.
//!
//! §2 of the paper defines the click graph: an undirected, weighted, bipartite
//! graph `G = (Q, A, E)` with queries on one side, ads on the other, and an
//! edge `(q, α)` whenever at least one user who issued `q` clicked on `α`
//! during the collection period. Each edge carries three weights:
//!
//! 1. **impressions** — how many times `α` was displayed for `q`;
//! 2. **clicks** — how many of those displays were clicked (≤ impressions);
//! 3. **expected click rate** — a position-adjusted clicks/impressions ratio
//!    computed by the sponsored-search back-end.
//!
//! This crate provides:
//!
//! * typed dense node ids ([`QueryId`], [`AdId`], [`NodeRef`]);
//! * per-edge weight data ([`EdgeData`], [`WeightKind`]);
//! * an accumulating [`builder::ClickGraphBuilder`];
//! * the immutable CSR [`ClickGraph`] with adjacency in both directions;
//! * string interning for query/ad display names ([`interner::Interner`]);
//! * connected components, induced subgraphs, component [`sharding`],
//!   degree statistics;
//! * incremental updates ([`delta::GraphDelta`]): batched edge
//!   upserts/removals with dirty-component analysis for exact
//!   component-local recompute;
//! * TSV + serde I/O;
//! * the paper's worked-example graphs ([`fixtures`]): Figure 3's sample click
//!   graph and the complete bipartite graphs of Figure 4.

pub mod builder;
pub mod components;
pub mod delta;
pub mod edge;
pub mod fixtures;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod segments;
pub mod sharding;
pub mod stats;
pub mod subgraph;
pub mod window;

pub use builder::ClickGraphBuilder;
pub use delta::{
    dirty_for_endpoints, ClickLogRecord, DeltaOp, DirtyComponents, GraphDelta, NamedOp,
};
pub use edge::{EdgeData, WeightKind};
pub use graph::ClickGraph;
pub use ids::{AdId, NodeRef, QueryId};
pub use interner::Interner;
pub use segments::{
    component_segments, write_segmented, Segment, SegmentInfo, SegmentWriter, SegmentedStore,
};
pub use sharding::{Shard, Sharding};
pub use stats::{DegreeHistogram, GraphStats};
pub use window::SlidingWindowGraph;
