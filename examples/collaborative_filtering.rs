//! Collaborative filtering with the Simrank++ machinery.
//!
//! §2 notes the rewriting problem "is a type of collaborative filtering
//! problem: we can view the queries as users who are recommending ads by
//! clicking on them", and the conclusions plan to apply the weighted and
//! evidence-based schemes "in other domains, including collaborative
//! filtering". This example does exactly that: a user × movie rating graph,
//! weighted SimRank over users, and top-N movie recommendations from the
//! most similar users.
//!
//! Run with: `cargo run --release --example collaborative_filtering`

use simrankpp::prelude::*;

/// (user, movie, rating 1–5) triples — a tiny MovieLens-shaped dataset with
/// two taste clusters (sci-fi vs romance) and one crossover user.
const RATINGS: &[(&str, &str, u64)] = &[
    ("alice", "star wars", 5),
    ("alice", "blade runner", 5),
    ("alice", "alien", 4),
    ("bob", "star wars", 5),
    ("bob", "alien", 5),
    ("bob", "dune", 4),
    ("carol", "blade runner", 4),
    ("carol", "dune", 5),
    ("carol", "alien", 4),
    ("dave", "notting hill", 5),
    ("dave", "amelie", 4),
    ("dave", "casablanca", 5),
    ("erin", "amelie", 5),
    ("erin", "casablanca", 4),
    ("erin", "notting hill", 4),
    // frank bridges the clusters.
    ("frank", "star wars", 3),
    ("frank", "casablanca", 4),
];

fn main() {
    // Users play the role of queries; movies play the role of ads; ratings
    // are the click weights.
    let mut builder = ClickGraphBuilder::new();
    for &(user, movie, rating) in RATINGS {
        builder.add_named(
            user,
            movie,
            EdgeData::new(rating * 2, rating, rating as f64 / 5.0),
        );
    }
    let graph = builder.build();
    println!(
        "Rating graph: {} users, {} movies, {} ratings\n",
        graph.n_queries(),
        graph.n_ads(),
        graph.n_edges()
    );

    let config = SimrankConfig::paper()
        .with_iterations(10)
        .with_weight_kind(WeightKind::Clicks);
    let method = Method::compute(MethodKind::WeightedSimrank, &graph, &config);

    // User-user similarities.
    println!("Most similar users (weighted SimRank):");
    for user in graph.queries() {
        let similar = method.ranked_candidates(user, 3);
        let list: Vec<String> = similar
            .iter()
            .map(|&(u, s)| format!("{} ({s:.3})", graph.query_name(u).unwrap_or("?")))
            .collect();
        println!(
            "  {:<8} -> {}",
            graph.query_name(user).unwrap_or("?"),
            list.join(", ")
        );
    }

    // Recommendations: movies rated by similar users that the target user
    // has not seen, scored by Σ user-similarity × rating.
    println!("\nRecommendations:");
    for user in graph.queries() {
        let (seen, _) = graph.ads_of(user);
        let mut scores: Vec<(AdId, f64)> = Vec::new();
        for (other, sim) in method.ranked_candidates(user, 5) {
            let (movies, edges) = graph.ads_of(other);
            for (&movie, edge) in movies.iter().zip(edges) {
                if seen.contains(&movie) {
                    continue;
                }
                match scores.iter_mut().find(|(m, _)| *m == movie) {
                    Some((_, s)) => *s += sim * edge.clicks as f64,
                    None => scores.push((movie, sim * edge.clicks as f64)),
                }
            }
        }
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let list: Vec<String> = scores
            .iter()
            .take(2)
            .map(|&(m, s)| format!("{} ({s:.2})", graph.ad_name(m).unwrap_or("?")))
            .collect();
        println!(
            "  {:<8} -> {}",
            graph.query_name(user).unwrap_or("?"),
            if list.is_empty() {
                "(nothing new)".to_owned()
            } else {
                list.join(", ")
            }
        );
    }

    // Sanity the clusters separated: alice's nearest neighbor is a sci-fi
    // fan, dave's is a romance fan.
    let alice = graph.query_by_name("alice").unwrap();
    let dave = graph.query_by_name("dave").unwrap();
    let top = |q| {
        method
            .ranked_candidates(q, 1)
            .first()
            .map(|&(u, _)| graph.query_name(u).unwrap().to_owned())
    };
    println!(
        "\nNearest neighbors: alice -> {:?}, dave -> {:?}",
        top(alice),
        top(dave)
    );
}
