//! Click-spam robustness (§11 future work).
//!
//! "Spam clicks can mislead our techniques and thus spam-resistant
//! variations of our techniques would be useful." This example measures the
//! damage: inject click-fraud campaigns of growing size into a synthetic
//! click graph and track how each SimRank variant's rewrite precision
//! (graded by the simulated editorial judge) degrades.
//!
//! Run with: `cargo run --release --example spam_robustness`

use simrankpp::prelude::*;
use simrankpp::synth::generator::generate;
use simrankpp::synth::spam::{inject_click_spam, SpamConfig};
use simrankpp::synth::EditorialJudge;

fn main() {
    let dataset = generate(&GeneratorConfig::small());
    let judge = EditorialJudge::new(&dataset.world);
    let config = SimrankConfig::paper().with_iterations(6);

    println!("Rewrite precision (grades 1-2) under click-spam injection\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "", "clean", "2 ads", "8 ads", "20 ads"
    );

    for kind in [
        MethodKind::Simrank,
        MethodKind::EvidenceSimrank,
        MethodKind::WeightedSimrank,
    ] {
        let mut row = Vec::new();
        for n_spam in [0usize, 2, 8, 20] {
            let graph = if n_spam == 0 {
                dataset.graph.clone()
            } else {
                let spam = SpamConfig {
                    n_spam_ads: n_spam,
                    queries_per_ad: 40,
                    clicks_per_edge: 80,
                    seed: 0x5BA4,
                };
                inject_click_spam(&dataset.graph, &spam).0
            };
            row.push(precision_on(&graph, &dataset.world, &judge, kind, &config));
        }
        println!(
            "{:<28} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            kind.name(),
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0,
            row[3] * 100.0
        );
    }
    println!(
        "\nExpected shape: precision declines as campaigns grow; the weighted\n\
         variant resists longest because spam edges have uniform fabricated\n\
         weights and spread penalties dampen their influence."
    );
}

/// Precision of top-5 rewrites (grades 1–2 positive) over the 60 most
/// popular queries.
fn precision_on(
    graph: &ClickGraph,
    world: &World,
    judge: &EditorialJudge,
    kind: MethodKind,
    config: &SimrankConfig,
) -> f64 {
    let method = Method::compute(kind, graph, config);
    let rewriter = Rewriter::new(graph, method, RewriterConfig::default());
    let mut by_pop: Vec<usize> = (0..world.n_queries()).collect();
    by_pop.sort_by(|&a, &b| {
        world.query_popularity[b]
            .partial_cmp(&world.query_popularity[a])
            .unwrap()
    });
    let mut relevant = 0usize;
    let mut total = 0usize;
    for &qi in by_pop.iter().take(60) {
        let q = QueryId(qi as u32);
        for r in rewriter.rewrites(q, None) {
            // Spam "queries" don't exist in the world; a rewrite pointing at
            // an out-of-world id is automatically a mismatch.
            if r.query.index() < world.n_queries() {
                total += 1;
                if judge.judge(q, r.query).relevant_at_2() {
                    relevant += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        relevant as f64 / total as f64
    }
}
