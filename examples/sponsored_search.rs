//! Sponsored search front-end on a realistic synthetic workload.
//!
//! Generates a ~2 000-query click graph with the workload generator (the
//! DESIGN.md §5 stand-in for the Yahoo! graph), runs the complete §9
//! evaluation — five-subgraph extraction, traffic-sampled evaluation
//! queries, all four methods, simulated editorial judging — and prints the
//! paper-style report (Table 5, Figures 8–12). Then shows concrete rewrites
//! with their grades for a few popular queries.
//!
//! Run with: `cargo run --release --example sponsored_search`

use simrankpp::eval::report::render_full;
use simrankpp::eval::{run_experiment, ExperimentConfig};
use simrankpp::prelude::*;
use simrankpp::synth::generator::generate;
use simrankpp::synth::EditorialJudge;

fn main() {
    // Full paper-shaped experiment at example scale.
    let config = ExperimentConfig::paper_shaped();
    println!("Generating synthetic click graph and running the §9 evaluation…\n");
    let report = run_experiment(&config);
    println!("{}", render_full(&report));

    // Concrete rewrites for the most popular queries, with grades.
    println!("\nSample rewrites (weighted SimRank, grades from the simulated editorial judge):");
    let dataset = generate(&config.generator);
    let judge = EditorialJudge::new(&dataset.world);
    let method = Method::compute(MethodKind::WeightedSimrank, &dataset.graph, &config.simrank);
    let rewriter = Rewriter::new(&dataset.graph, method, RewriterConfig::default());

    let mut by_pop: Vec<usize> = (0..dataset.world.n_queries()).collect();
    by_pop.sort_by(|&a, &b| {
        dataset.world.query_popularity[b]
            .partial_cmp(&dataset.world.query_popularity[a])
            .unwrap()
    });
    let mut shown = 0;
    for &qi in &by_pop {
        let q = QueryId(qi as u32);
        let rewrites = rewriter.rewrites(q, Some(&dataset.world.bids));
        if rewrites.is_empty() {
            continue;
        }
        println!("  \"{}\":", dataset.world.query_name[qi]);
        for r in &rewrites {
            let grade = judge.judge(q, r.query);
            println!(
                "    {:<30} score {:.4}  grade {} ({:?})",
                r.name.clone().unwrap_or_default(),
                r.score,
                grade.score(),
                grade
            );
        }
        shown += 1;
        if shown >= 5 {
            break;
        }
    }
}
