//! Dataset preparation (§9.2): local partitioning of the click graph.
//!
//! Generates a synthetic click graph, computes global PageRank, then carves
//! five disjoint subgraphs with the Andersen–Chung–Lang push + sweep-cut
//! method — the procedure behind the paper's Table 5 — and prints the
//! resulting statistics and conductances.
//!
//! Run with: `cargo run --release --example subgraph_extraction`

use simrankpp::graph::components::connected_components;
use simrankpp::graph::GraphStats;
use simrankpp::partition::{extract_subgraphs, pagerank, ExtractConfig, FlatView, PagerankConfig};
use simrankpp::synth::generator::{generate, GeneratorConfig};

fn main() {
    let dataset = generate(&GeneratorConfig::small());
    let g = &dataset.graph;
    let stats = GraphStats::compute(g);
    println!(
        "Full synthetic click graph: {} queries, {} ads, {} edges",
        stats.n_queries, stats.n_ads, stats.n_edges
    );
    let comps = connected_components(g);
    let mut sizes: Vec<usize> = comps.sizes().iter().map(|&(q, a)| q + a).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "Connected components: {} (largest: {} nodes) — \"one huge component and several smaller subgraphs\" (§9.2)",
        comps.count,
        sizes.first().copied().unwrap_or(0)
    );
    if let Some(alpha) = stats.ads_per_query.powlaw_or_none() {
        println!("Ads-per-query power-law exponent (MLE): {alpha:.2}");
    }

    // Global PageRank for seed selection.
    let view = FlatView::new(g);
    let pr = pagerank(&view, &PagerankConfig::default());
    let max_pr = pr.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "Global PageRank computed ({} nodes, max rank {max_pr:.2e})\n",
        pr.len()
    );

    // Extract five subgraphs, Table 5 style.
    let config = ExtractConfig {
        n_subgraphs: 5,
        min_size: 20,
        max_size: 1200,
        ..ExtractConfig::default()
    };
    let subs = extract_subgraphs(g, &config);
    println!("Table 5: Dataset statistics (five extracted subgraphs)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>14}",
        "", "# Queries", "# Ads", "# Edges", "conductance"
    );
    let mut totals = (0usize, 0usize, 0usize);
    for (i, s) in subs.iter().enumerate() {
        let st = GraphStats::compute(&s.graph);
        println!(
            "subgraph {:<3} {:>10} {:>10} {:>10} {:>14.4}",
            i + 1,
            st.n_queries,
            st.n_ads,
            st.n_edges,
            s.conductance
        );
        totals.0 += st.n_queries;
        totals.1 += st.n_ads;
        totals.2 += st.n_edges;
    }
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "Total", totals.0, totals.1, totals.2
    );
}

/// Small extension trait so the example reads naturally.
trait PowerlawExt {
    fn powlaw_or_none(&self) -> Option<f64>;
}

impl PowerlawExt for simrankpp::graph::DegreeHistogram {
    fn powlaw_or_none(&self) -> Option<f64> {
        self.powerlaw_alpha(1)
    }
}
