//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 3 sample click graph, reproduces Table 1 (naive
//! common-ad counts) and Table 2 (converged SimRank scores), then produces
//! rewrites for every query with all four methods.
//!
//! Run with: `cargo run --release --example quickstart`

use simrankpp::core::naive::naive_scores;
use simrankpp::core::simrank::simrank;
use simrankpp::graph::fixtures::{figure3_graph, FIGURE3_QUERIES};
use simrankpp::prelude::*;

fn main() {
    let graph = figure3_graph();
    println!(
        "Figure 3 click graph: {} queries, {} ads, {} edges\n",
        graph.n_queries(),
        graph.n_ads(),
        graph.n_edges()
    );

    // --- Table 1: naive common-ad similarity -------------------------------
    println!("Table 1: common-ad counts");
    let naive = naive_scores(&graph);
    print_matrix(&graph, |a, b| naive.get(a.0, b.0));

    // --- Table 2: converged SimRank, C1 = C2 = 0.8 -------------------------
    println!("\nTable 2: SimRank scores (C1 = C2 = 0.8, converged)");
    let config = SimrankConfig::paper()
        .with_iterations(100)
        .with_weight_kind(WeightKind::Clicks);
    let sr = simrank(&graph, &config);
    print_matrix(&graph, |a, b| sr.queries.get(a.0, b.0));

    // --- Rewrites from each method -----------------------------------------
    let config = SimrankConfig::paper().with_weight_kind(WeightKind::Clicks);
    for kind in MethodKind::EVALUATED {
        println!("\nRewrites by {}:", kind.name());
        let method = Method::compute(kind, &graph, &config);
        let rewriter = Rewriter::new(&graph, method, RewriterConfig::default());
        for q in graph.queries() {
            let rewrites = rewriter.rewrites(q, None);
            let list: Vec<String> = rewrites
                .iter()
                .map(|r| format!("{} ({:.3})", r.name.clone().unwrap_or_default(), r.score))
                .collect();
            println!(
                "  {:<16} -> {}",
                graph.query_name(q).unwrap_or("?"),
                if list.is_empty() {
                    "(no rewrites)".to_owned()
                } else {
                    list.join(", ")
                }
            );
        }
    }
}

fn print_matrix(_graph: &ClickGraph, score: impl Fn(QueryId, QueryId) -> f64) {
    print!("{:<16}", "");
    for name in FIGURE3_QUERIES {
        print!("{name:>16}");
    }
    println!();
    for (i, a) in FIGURE3_QUERIES.iter().enumerate() {
        print!("{a:<16}");
        for (j, _) in FIGURE3_QUERIES.iter().enumerate() {
            if i == j {
                print!("{:>16}", "-");
            } else {
                print!("{:>16.3}", score(QueryId(i as u32), QueryId(j as u32)));
            }
        }
        println!();
    }
}
