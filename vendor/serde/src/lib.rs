//! Minimal, offline replacement for the parts of `serde` this workspace uses.
//!
//! The container that builds this repository has no access to crates.io, so
//! the real `serde` cannot be fetched. This crate keeps the *call sites*
//! unchanged — `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` with the `#[serde(skip)]` and
//! `#[serde(transparent)]` attributes — but implements them over a simple
//! in-crate JSON [`json::Value`] model instead of serde's visitor machinery.
//!
//! Supported derive shapes (everything the workspace defines):
//! named-field structs, newtype (1-field tuple) structs, enums with unit
//! and newtype variants. Generic types must implement the traits manually
//! (the blanket impls below cover `Vec`, `Option`, arrays and small tuples).

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Map, Value};

/// Error produced by (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the JSON value model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the JSON value model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Reads a struct field out of an object value (used by generated code).
/// Missing keys deserialize from `Null`, which succeeds only for types with
/// a null form (e.g. `Option`).
pub fn de_field<T: Deserialize>(v: &Value, field: &str) -> Result<T, Error> {
    match v {
        Value::Object(m) => match m.get(field) {
            Some(x) => {
                T::deserialize_value(x).map_err(|e| Error::custom(format!("field `{field}`: {e}")))
            }
            None => T::deserialize_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{field}`"))),
        },
        other => Err(Error::custom(format!(
            "expected object for struct, found {}",
            other.kind()
        ))),
    }
}

/// As [`de_field`], but a missing key yields `T::default()` instead of
/// attempting a null deserialize — backs `#[serde(default)]`, so structs can
/// grow fields without breaking previously persisted JSON.
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, field: &str) -> Result<T, Error> {
    match v {
        Value::Object(m) => match m.get(field) {
            Some(x) => {
                T::deserialize_value(x).map_err(|e| Error::custom(format!("field `{field}`: {e}")))
            }
            None => Ok(T::default()),
        },
        other => Err(Error::custom(format!(
            "expected object for struct, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, found {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| {
                    Error::custom(format!("expected number, found {}", v.kind()))
                })
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let vec: Result<Vec<T>, Error> = items.iter().map(T::deserialize_value).collect();
                vec?.try_into()
                    .map_err(|_| Error::custom("array length mismatch"))
            }
            other => Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.iter();
                        Ok(($($name::deserialize_value(it.next().unwrap())?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {}-tuple array, found {}", $len, other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple!(
    (A.0 ; 1),
    (A.0, B.1 ; 2),
    (A.0, B.1, C.2 ; 3),
    (A.0, B.1, C.2, D.3 ; 4)
);

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, val) in self {
            m.insert(k.clone(), val.serialize_value());
        }
        Value::Object(m)
    }
}
impl<V, S> Deserialize for std::collections::HashMap<String, V, S>
where
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            u64::deserialize_value(&42u64.serialize_value()).unwrap(),
            42
        );
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert_eq!(
            String::deserialize_value(&String::from("hi").serialize_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(
            Vec::<u32>::deserialize_value(&v.serialize_value()).unwrap(),
            v
        );
        let a = [0.5f64; 5];
        assert_eq!(
            <[f64; 5]>::deserialize_value(&a.serialize_value()).unwrap(),
            a
        );
        let t = (1usize, 2usize, 3usize);
        assert_eq!(
            <(usize, usize, usize)>::deserialize_value(&t.serialize_value()).unwrap(),
            t
        );
    }
}
