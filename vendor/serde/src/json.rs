//! The JSON value model, printer and parser backing the serde subset.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Object storage. `BTreeMap` gives deterministic key order in output.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative or parenthesized integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric coercion to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

/// Compact rendering.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty rendering with 2-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null"); // JSON has no NaN/inf
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse error with byte position.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_owned(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. Input is a &str, so byte
                    // boundaries are valid; find the char at this position.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // self.pos is at 'u'
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // surrogate pair
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let mut m = Map::new();
        m.insert(
            "a".into(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)]),
        );
        m.insert("s".into(), Value::Str("he\"llo\n".into()));
        m.insert("n".into(), Value::Null);
        m.insert("neg".into(), Value::Int(-7));
        let v = Value::Object(m);
        let compact = to_string(&v);
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let x = 0.123_456_789_012_345_68_f64;
        let v = Value::Float(x);
        match parse(&to_string(&v)).unwrap() {
            Value::Float(y) => assert_eq!(x, y),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
