//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// String patterns like `"[a-z]{3,20}"` act as strategies, mirroring
/// proptest's regex-string support for the subset of syntax the tests use:
/// a sequence of literal characters or `[...]` classes, each optionally
/// followed by `{m,n}` (uniform length in `m..=n`).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.max > atom.min {
                rng.gen_range(atom.min..=atom.max)
            } else {
                atom.min
            };
            for _ in 0..n {
                let i = rng.gen_range(0..atom.chars.len());
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms: Vec<Atom> = Vec::new();
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pat:?}");
                i += 1; // past ']'
                atoms.push(Atom {
                    chars: set,
                    min: 1,
                    max: 1,
                });
            }
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {m,n}")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                let (m, n) = match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let k = spec.trim().parse().expect("bad {n}");
                        (k, k)
                    }
                };
                let last = atoms.last_mut().expect("quantifier without atom");
                last.min = m;
                last.max = n;
                i = close + 1;
            }
            c => {
                atoms.push(Atom {
                    chars: vec![c],
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
        }
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = rng_for("ranges");
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = rng_for("regex");
        for _ in 0..200 {
            let s = "[a-z]{3,20}".generate(&mut rng);
            assert!((3..=20).contains(&s.len()), "len {} of {s:?}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..100 {
            let s = "[ a-zA-Z0-9,.!-]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,.!-".contains(c)));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng_for("map");
        let strat = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }
}
