//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a uniformly drawn length.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `vec(element, m..n)`: vectors of `m..n` elements (mirrors proptest).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = rng.gen_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
