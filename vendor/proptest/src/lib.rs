//! Offline subset of the `proptest` API.
//!
//! Supports the shapes this workspace's property tests use:
//!
//! * the `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) {..} }`
//!   macro form;
//! * strategies: integer and float `Range`s, tuples of strategies,
//!   `proptest::collection::vec`, simple character-class regex strings
//!   (`"[a-z]{3,20}"`), and `.prop_map`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Failing cases panic with the plain `assert!` message (the generated
//! inputs are not captured — add them to the assert's format args if you
//! need them in the failure output). There is no shrinking. Case generation
//! is deterministic per test (seeded from the test name), so a failure
//! reproduces exactly on rerun.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // Internal: expand each test with an explicit config expression.
    (@cfg ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::rng_for(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng); )*
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
