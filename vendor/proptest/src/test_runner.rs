//! Configuration and per-case control flow for the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How many accepted cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a case did not count.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs.
    Reject,
}

/// Body outcome: `Ok` counts the case, `Err(Reject)` retries with new inputs.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG per test, seeded from the test name (FNV-1a) so runs
/// reproduce without a seed file.
pub fn rng_for(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}
