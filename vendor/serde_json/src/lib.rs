//! Offline subset of `serde_json` over the vendored `serde` value model.
//!
//! Provides exactly the entry points this workspace calls: [`to_string`],
//! [`to_string_pretty`] and [`from_str`].

pub use serde::json::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

impl From<serde::json::ParseError> for Error {
    fn from(e: serde::json::ParseError) -> Self {
        Error { msg: e.to_string() }
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string(&value.serialize_value()))
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string_pretty(&value.serialize_value()))
}

/// Parses a JSON document into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    Ok(T::deserialize_value(&v)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_vec_of_tuples() {
        let v: Vec<(usize, f64)> = vec![(1, 0.5), (2, 1.25)];
        let s = super::to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = super::from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = super::to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<u32> = super::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
