//! `#[derive(Serialize, Deserialize)]` for the offline serde subset.
//!
//! syn/quote are unavailable offline, so the input item is parsed directly
//! from the `proc_macro` token stream and the impl is emitted as source text
//! (`TokenStream` implements `FromStr`). Supported shapes — the full set used
//! by this workspace:
//!
//! * structs with named fields (`#[serde(skip)]` honored: skipped on
//!   serialize, `Default::default()` on deserialize; `#[serde(default)]`
//!   honored: serialized normally, `Default::default()` when the key is
//!   missing on deserialize);
//! * tuple structs of any arity (arity 1 serializes as its inner value,
//!   which also covers `#[serde(transparent)]`; arity ≥ 2 as an array);
//! * enums with unit variants (serialized as the variant-name string) and
//!   newtype variants (serialized as `{"Variant": value}`); explicit
//!   discriminants (`Precise = 1`) are accepted and ignored, as in serde.
//!
//! Generics and struct variants are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    has_payload: bool,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Shape {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Container attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive subset: generic type `{name}` unsupported"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Shape {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape {
                name,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        kw => Err(format!("serde_derive subset: cannot derive for `{kw}`")),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
/// Returns, per needle, whether any scanned attribute was `#[serde(...)]`
/// containing that ident (callers pass e.g. `["skip", "default"]`; pass `[]`
/// to just skip).
fn skip_attrs_scanning(tokens: &[TokenTree], i: &mut usize, needles: &[&str]) -> Vec<bool> {
    let mut found = vec![false; needles.len()];
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    for (f, needle) in found.iter_mut().zip(needles) {
                        if attr_is_serde_with(g.stream(), needle) {
                            *f = true;
                        }
                    }
                    *i += 1;
                } else {
                    return found;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return found,
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    skip_attrs_scanning(tokens, i, &[]);
}

/// Is this attribute body (the `[...]` content) `serde(...)` mentioning `needle`?
fn attr_is_serde_with(stream: TokenStream, needle: &str) -> bool {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == needle)),
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let flags = skip_attrs_scanning(&tokens, &mut i, &["skip", "default"]);
        let (skip, default) = (flags[0], flags[1]);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected ':' after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for t in stream {
        any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => commas += 1,
            _ => {}
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let mut has_payload = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde_derive subset: variant `{name}` must be unit or newtype"
                    ));
                }
                has_payload = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive subset: struct variant `{name}` unsupported"
                ));
            }
            _ => {}
        }
        // Explicit discriminant: `= expr` — skip to the next top-level comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(t) = tokens.get(i) {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, has_payload });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    let name = &shape.name;
    let body = match &shape.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::json::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from({n:?}), \
                     ::serde::Serialize::serialize_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::json::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!(
                "::serde::json::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.has_payload {
                    arms.push_str(&format!(
                        "{name}::{v}(f0) => {{ \
                           let mut m = ::serde::json::Map::new(); \
                           m.insert(::std::string::String::from({v:?}), \
                                    ::serde::Serialize::serialize_value(f0)); \
                           ::serde::json::Value::Object(m) }}\n",
                        v = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::Str(\
                         ::std::string::String::from({v:?})),\n",
                        v = v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    let name = &shape.name;
    let body = match &shape.kind {
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{n}: ::serde::de_field_or_default(v, {n:?})?,\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!("{n}: ::serde::de_field(v, {n:?})?,\n", n = f.name));
                }
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                   ::serde::json::Value::Array(items) if items.len() == {n} => \
                     ::std::result::Result::Ok({name}({items})),\n\
                   other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected array of {n} for {name}, found {{}}\", other.kind()))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                if v.has_payload {
                    payload_arms.push_str(&format!(
                        "if let ::std::option::Option::Some(x) = m.get({v:?}) {{ \
                           return ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize_value(x)?)); }}\n",
                        v = v.name
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            let object_arm = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::json::Value::Object(m) => {{\n\
                       {payload_arms}\
                       ::std::result::Result::Err(::serde::Error::custom(\
                         \"unknown payload variant for {name}\"))\n\
                     }}\n"
                )
            };
            format!(
                "match v {{\n\
                   ::serde::json::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                   }},\n\
                   {object_arm}\
                   other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected variant of {name}, found {{}}\", other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize_value(v: &::serde::json::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
