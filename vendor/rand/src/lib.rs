//! Offline subset of the `rand` 0.8 API.
//!
//! The workspace only needs deterministic, seedable, decent-quality
//! pseudo-randomness: `SmallRng::seed_from_u64`, `Rng::gen::<f64>()`,
//! `Rng::gen_range(..)` over integer/float ranges, and `Rng::gen_bool`.
//! Exact bit-compatibility with upstream `rand` is *not* provided (and not
//! relied on — tests assert statistical properties, not stream values).
//!
//! `SmallRng` is xoshiro256++ seeded via SplitMix64, the same algorithm
//! family upstream uses on 64-bit targets.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        if p >= 1.0 {
            true
        } else {
            self.gen::<f64>() < p
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform draw from `[0, span)` by power-of-two masking with
/// rejection; expected < 2 draws.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let mask = span.next_power_of_two() - 1;
    loop {
        let r = rng.next_u64() & mask;
        if r < span {
            return r;
        }
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(5u64..=7);
            assert!((5..=7).contains(&x));
        }
        let neg = rng.gen_range(-5i64..5);
        assert!((-5..5).contains(&neg));
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
