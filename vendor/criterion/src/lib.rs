//! Offline subset of the `criterion` benchmarking API.
//!
//! Keeps bench sources unchanged (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `bench_with_input`,
//! `BenchmarkId`) but replaces the statistical machinery with a plain
//! warmup-then-sample wall-clock loop. Each benchmark prints
//! `name  time: [min mean max]` on one line. Good enough to compare
//! alternatives on the same machine; not a criterion replacement for
//! regression detection.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark (after warmup).
const SAMPLE_BUDGET: Duration = Duration::from_millis(400);

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    result: Option<Summary>,
}

struct Summary {
    min: Duration,
    mean: Duration,
    max: Duration,
    samples: usize,
}

impl Bencher {
    /// Times `f`, adaptively choosing the sample count from the first call's
    /// duration so slow benchmarks stay within the budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup + pilot measurement.
        let t0 = Instant::now();
        black_box(f());
        let pilot = t0.elapsed().max(Duration::from_nanos(1));

        let budget_samples = (SAMPLE_BUDGET.as_nanos() / pilot.as_nanos()).max(1) as usize;
        let samples = budget_samples.min(self.sample_size.max(1));

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        self.result = Some(Summary {
            min,
            mean: total / samples as u32,
            max,
            samples,
        });
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{name:<44} time: [{} {} {}] ({} samples)",
            fmt_duration(s.min),
            fmt_duration(s.mean),
            fmt_duration(s.max),
            s.samples
        ),
        None => println!("{name:<44} (no iter() call)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
