//! Differential harness for the streaming ingestion path.
//!
//! `serve ingest` maintains its index through a chain of incremental
//! refreshes driven by click-log records — never a from-scratch build
//! after the first generation. This suite pins the invariant that makes
//! that trustworthy: **replaying a click log through an
//! [`EpochIngestor`] ends in exactly the state a scratch rebuild of the
//! surviving window would produce**, at test scale bit for bit:
//!
//! * the windowed graph's [`fingerprint`](ClickGraph::fingerprint)
//!   equals a scratch build replaying only the surviving events;
//! * every query's served rewrite list — ids *and* f64 score bits —
//!   matches an index built fresh from the frozen window, even though
//!   the ingestor's copy was stitched from dirty-component rebuilds
//!   across many epochs;
//! * recency decay is an ECR-only, newest-anchored fold: `decay = 1`
//!   keeps freezes bit-identical to scratch, and lowering `decay` pulls
//!   a twice-observed edge's ECR monotonically toward its newest
//!   observation while never leaving the observed range;
//! * the windowed spam experiment's headline gate: expiry drives
//!   campaign contamination to exactly zero while the no-windowing
//!   baseline stays contaminated (the `bench_ci --tier stream` gate,
//!   reproduced here so plain `cargo test` catches a regression first).
//!
//! Runs in CI under `--release` too: bit-identical stitching must
//! survive optimized codegen.

use proptest::prelude::*;
use simrankpp::core::{Method, MethodKind, Rewriter, RewriterConfig, SimrankConfig};
use simrankpp::graph::delta::{read_click_log, write_click_log};
use simrankpp::graph::{ClickGraph, ClickLogRecord, EdgeData, SlidingWindowGraph, WeightKind};
use simrankpp::serve::{EpochIngestor, IngestConfig, RewriteIndex};
use simrankpp::synth::generator::{generate, GeneratorConfig};

fn cfg() -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(4)
        .with_weight_kind(WeightKind::ExpectedClickRate)
}

fn ingest_config(window: usize, decay: f64) -> IngestConfig {
    IngestConfig {
        window,
        decay,
        method: MethodKind::WeightedSimrank,
        config: cfg(),
        rewriter: RewriterConfig::default(),
        threads: 1,
    }
}

/// A deterministic multi-epoch click log: `n_epochs` epochs over a small
/// name universe, each with a handful of events, closed by explicit `@`
/// marks. Some events carry an epoch stamp ahead of the last mark so the
/// implicit-advance path gets exercised too.
fn synth_click_log(seed: u64, n_epochs: u64, events_per_epoch: usize) -> Vec<ClickLogRecord> {
    let mut x = seed | 1;
    let mut step = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 33
    };
    let mut log = Vec::new();
    for epoch in 0..n_epochs {
        for _ in 0..events_per_epoch {
            let clicks = 1 + step() % 9;
            log.push(ClickLogRecord::Event {
                epoch,
                query: format!("q{}", step() % 12),
                ad: format!("ad{}", step() % 8),
                data: EdgeData {
                    impressions: clicks + step() % 20,
                    clicks,
                    expected_click_rate: (1 + step() % 1000) as f64 / 1000.0,
                },
            });
        }
        // Some epochs end without an `@` mark: the next epoch's first
        // event carries the higher stamp and must open the bucket
        // implicitly (no refresh signal). The final mark always lands so
        // a refresh chain replaying this log ends on a boundary.
        if epoch % 3 != 1 || epoch + 1 == n_epochs {
            log.push(ClickLogRecord::EpochMark { epoch: epoch + 1 });
        }
    }
    log
}

/// Mirrors [`EpochIngestor::apply_record`] onto a bare window: the
/// reference model the ingestor is checked against.
fn replay_into_window(window: &mut SlidingWindowGraph, log: &[ClickLogRecord]) {
    for rec in log {
        match rec {
            ClickLogRecord::Event {
                epoch,
                query,
                ad,
                data,
            } => {
                if *epoch > window.epoch() {
                    window.advance_to(*epoch);
                }
                window.observe(query, ad, *data);
            }
            ClickLogRecord::EpochMark { epoch } => {
                window.advance_to(*epoch);
            }
        }
    }
}

/// Builds a fresh index over `graph` with the suite's pipeline config.
fn scratch_index(graph: &ClickGraph) -> RewriteIndex {
    let method = Method::compute(MethodKind::WeightedSimrank, graph, &cfg());
    let rewriter = Rewriter::new(graph, method, RewriterConfig::default());
    RewriteIndex::build(&rewriter, None, 1)
}

fn assert_served_bit_identical(chained: &RewriteIndex, scratch: &RewriteIndex) {
    assert_eq!(
        chained.n_queries(),
        scratch.n_queries(),
        "row count differs"
    );
    assert_eq!(
        chained.n_entries(),
        scratch.n_entries(),
        "entry count differs"
    );
    for q in 0..chained.n_queries() as u32 {
        let q = simrankpp::graph::QueryId(q);
        let (a, b) = (chained.rewrites_of(q), scratch.rewrites_of(q));
        assert_eq!(a.ids(), b.ids(), "rewrite ids differ for {q:?}");
        let (sa, sb) = (a.scores(), b.scores());
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(sb) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "score drifted for {q:?}: {x:e} vs {y:e}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole equivalence: a log replayed through the ingestor's
    // incremental refresh chain == a scratch rebuild of the surviving
    // window. Both the frozen graph (fingerprint) and every served row
    // (ids + f64 score bits) must agree, through the wire format.
    #[test]
    fn log_replay_through_refresh_chain_equals_scratch_rebuild(
        seed in 0u64..1_000_000,
        n_epochs in 3u64..8,
        events_per_epoch in 2usize..12,
        window in 1usize..5,
    ) {
        let log = synth_click_log(seed, n_epochs, events_per_epoch);

        // Round-trip through the on-disk wire format first: what the
        // tailer reads is what this suite replays.
        let mut wire = Vec::new();
        write_click_log(&log, &mut wire).unwrap();
        let log = read_click_log(wire.as_slice()).unwrap();

        // The system under test: refresh at every advancing epoch mark,
        // exactly like the `serve ingest` loop.
        let mut ingestor = EpochIngestor::new(ingest_config(window, 1.0));
        let mut last = None;
        for rec in &log {
            if ingestor.apply_record(rec) {
                let (index, _, _) = ingestor.refresh().unwrap();
                last = Some(index);
            }
        }
        let chained = last.expect("every log ends with an advancing mark");

        // The reference model: the same records into a bare window, then
        // one scratch freeze + full build.
        let mut mirror = SlidingWindowGraph::new(window);
        replay_into_window(&mut mirror, &log);
        let frozen = mirror.freeze();

        // Window bit-identity at integration scale: replaying only the
        // surviving events through a fresh builder over the same
        // universe reproduces the freeze exactly.
        let mut b = mirror.universe_builder();
        for rec in &log {
            if let ClickLogRecord::Event { epoch, query, ad, data } = rec {
                // Survivors: the half-open window of the final epoch.
                if epoch + (window as u64) > mirror.epoch() {
                    b.add_edge(
                        mirror.query_id(query).unwrap(),
                        mirror.ad_id(ad).unwrap(),
                        *data,
                    );
                }
            }
        }
        prop_assert_eq!(b.build().fingerprint(), frozen.fingerprint());

        assert_served_bit_identical(&chained, &scratch_index(&frozen));
    }

    // Decay is newest-anchored: for an edge observed in an old and a new
    // epoch, shrinking `decay` pulls the frozen ECR monotonically toward
    // the newest observation, and the ECR never leaves the observed
    // range. Impressions and clicks stay undecayed counts.
    #[test]
    fn decay_pulls_ecr_monotonically_toward_the_newest_event(
        ecr_old in 0.0f64..1.0,
        ecr_new in 0.0f64..1.0,
        impressions_old in 1u64..50,
        impressions_new in 1u64..50,
        lambda_lo in 0.05f64..0.95,
        gap in 0.01f64..0.5,
    ) {
        let lambda_hi = (lambda_lo + gap).min(1.0);
        let freeze_at = |decay: f64| {
            let mut w = SlidingWindowGraph::new(4).with_decay(decay);
            w.observe("q", "a", EdgeData {
                impressions: impressions_old,
                clicks: 1,
                expected_click_rate: ecr_old,
            });
            w.advance();
            w.observe("q", "a", EdgeData {
                impressions: impressions_new,
                clicks: 2,
                expected_click_rate: ecr_new,
            });
            let g = w.freeze();
            let e = g.edges().next().unwrap().2;
            prop_assert_eq!(e.impressions, impressions_old + impressions_new);
            prop_assert_eq!(e.clicks, 3);
            Ok(e.expected_click_rate)
        };
        let (lo, hi) = (freeze_at(lambda_lo)?, freeze_at(lambda_hi)?);
        let (min, max) = (ecr_old.min(ecr_new), ecr_old.max(ecr_new));
        prop_assert!(lo >= min - 1e-12 && lo <= max + 1e-12, "ECR left the observed range: {lo}");
        prop_assert!(
            (lo - ecr_new).abs() <= (hi - ecr_new).abs() + 1e-12,
            "smaller decay must sit closer to the newest ECR: \
             λ={lambda_lo} -> {lo} vs λ={lambda_hi} -> {hi} (newest {ecr_new})"
        );
    }

    // `decay = 1` is the exact regime: the decayed fold must not engage,
    // and freezes stay bit-identical to scratch replays even for edges
    // re-observed across epochs.
    #[test]
    fn unit_decay_freezes_bit_identical_to_scratch(
        seed in 0u64..1_000_000,
        n_epochs in 2u64..6,
    ) {
        let log = synth_click_log(seed, n_epochs, 6);
        let mut plain = SlidingWindowGraph::new(3);
        let mut unit = SlidingWindowGraph::new(3).with_decay(1.0);
        replay_into_window(&mut plain, &log);
        replay_into_window(&mut unit, &log);
        prop_assert_eq!(plain.freeze().fingerprint(), unit.freeze().fingerprint());
    }
}

/// The stream tier's adversarial gate, at `cargo test` scale: window
/// expiry drives spam contamination to exactly zero while the
/// no-windowing observer stays contaminated — windowing must *beat* the
/// baseline, not merely match it.
#[test]
fn windowed_spam_defense_beats_the_no_windowing_baseline() {
    use simrankpp::eval::{run_windowed_spam_experiment, SpamTimeline};
    let clean = generate(&GeneratorConfig::tiny()).graph;
    let outcome = run_windowed_spam_experiment(
        &clean,
        &SpamTimeline::default(),
        MethodKind::WeightedSimrank,
        &SimrankConfig::default(),
        RewriterConfig::default(),
    );
    assert!(
        outcome.unwindowed.contamination() > 0.0,
        "the campaign must register on the unwindowed baseline: {outcome:?}"
    );
    assert_eq!(
        outcome.windowed.contamination(),
        0.0,
        "expiry must drive contamination to exactly zero: {outcome:?}"
    );
    assert!(
        outcome.windowed.rewrites > 0,
        "organic service must continue under windowing: {outcome:?}"
    );
    assert!(
        outcome.windowed.contamination() < outcome.unwindowed.contamination(),
        "windowing must beat the baseline outright: {outcome:?}"
    );
}
