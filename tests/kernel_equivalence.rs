//! Differential harness for the engine's accumulation kernels.
//!
//! The unified engine runs one Jacobi loop behind three interchangeable
//! kernels (`SimrankConfig::kernel`): the production **pull** kernel
//! (row-parallel Gustavson SpGEMM, ISSUE 5), the **flat** scatter–sort–merge
//! path it replaced, and the historical **hashmap** path. This suite pins
//! the contracts between them:
//!
//! * all three kernels agree on every fixture — identical stored pair sets
//!   and scores to rounding at `prune_threshold = 0` (summation *orders*
//!   differ, so cross-kernel equality is to f64 rounding, not bits), for
//!   uniform and weighted transitions;
//! * with pruning the kernels agree on every co-stored pair, and any pair
//!   set difference is confined to knife-edge values at the threshold
//!   (a per-value `v > t` decision on values that differ only in rounding);
//! * the pull kernel is **bit-deterministic across thread counts** — worker
//!   chunk boundaries never touch a row's accumulation order;
//! * pull == pull under sharding and incremental recompute, **bit for bit,
//!   above the flat path's 2²⁰-contribution flush threshold** — the scale
//!   where `engine::accum` documented that the flat path's sharded
//!   guarantee degraded to "equal modulo rounding" because run boundaries
//!   could reassociate partial sums. The pull kernel has no flush; this is
//!   the regression test that the divergence is gone.

use proptest::prelude::*;
use simrankpp::core::engine::{self, UniformTransition, WeightedTransition};
use simrankpp::core::weighted::SpreadMode;
use simrankpp::core::{KernelKind, ScoreMatrix};
use simrankpp::graph::delta::GraphDelta;
use simrankpp::graph::Sharding;
use simrankpp::prelude::*;
use simrankpp::synth::generator::{generate, GeneratorConfig};

fn synth_graph(n_topics: usize, n_queries: usize, seed: u64, dense: bool) -> ClickGraph {
    let mut gen = GeneratorConfig::tiny().with_seed(seed);
    gen.n_topics = n_topics;
    gen.n_queries = n_queries;
    gen.n_ads = (n_queries * 2 / 3).max(4);
    gen.max_ads_per_query = if dense { 12 } else { 4 };
    generate(&gen).graph
}

fn cfg(k: usize, kernel: KernelKind) -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(k)
        .with_weight_kind(WeightKind::Clicks)
        .with_kernel(kernel)
}

fn assert_bit_identical(a: &ScoreMatrix, b: &ScoreMatrix, what: &str) {
    assert_eq!(a.n_pairs(), b.n_pairs(), "{what}: pair count");
    for ((a1, b1, v1), (a2, b2, v2)) in a.iter().zip(b.iter()) {
        assert_eq!((a1, b1), (a2, b2), "{what}: pair set diverged");
        assert_eq!(
            v1.to_bits(),
            v2.to_bits(),
            "{what}: pair ({a1}, {b1}) drifted: {v1:e} vs {v2:e}"
        );
    }
}

/// Same pair set, scores equal to `tol` — the cross-kernel contract at
/// `prune_threshold = 0`, where no knife-edge drops are possible.
fn assert_same_support_close(a: &ScoreMatrix, b: &ScoreMatrix, tol: f64, what: &str) {
    assert_eq!(a.n_pairs(), b.n_pairs(), "{what}: pair count");
    for ((a1, b1, v1), (a2, b2, v2)) in a.iter().zip(b.iter()) {
        assert_eq!((a1, b1), (a2, b2), "{what}: pair set diverged");
        assert!(
            (v1 - v2).abs() < tol,
            "{what}: pair ({a1}, {b1}) drifted by {:e}",
            (v1 - v2).abs()
        );
    }
}

/// With pruning, kernels may disagree only on knife-edge pairs: co-stored
/// pairs match to `tol`, union-only pairs sit within rounding of the
/// threshold itself.
fn assert_close_modulo_prune(a: &ScoreMatrix, b: &ScoreMatrix, prune: f64, tol: f64, what: &str) {
    for (x, y, v) in a.iter() {
        let other = b.get(x, y);
        if other == 0.0 {
            assert!(
                (v - prune).abs() < prune * 1e-9 + tol,
                "{what}: pair ({x}, {y}) = {v:e} missing from other side, not knife-edge"
            );
        } else {
            assert!((v - other).abs() < tol, "{what}: pair ({x}, {y}) drifted");
        }
    }
    for (x, y, v) in b.iter() {
        if a.get(x, y) == 0.0 {
            assert!(
                (v - prune).abs() < prune * 1e-9 + tol,
                "{what}: pair ({x}, {y}) = {v:e} missing from other side, not knife-edge"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn all_three_kernels_agree_unpruned(
        n_topics in 1usize..5,
        n_queries in 30usize..110,
        seed in 0u64..1_000_000,
        dense_sel in 0u8..2,
    ) {
        let g = synth_graph(n_topics, n_queries, seed, dense_sel == 1);
        let t = WeightedTransition { kind: WeightKind::Clicks, spread: SpreadMode::Exponential };
        let runs: Vec<_> = [KernelKind::Pull, KernelKind::Flat, KernelKind::Hashmap]
            .into_iter()
            .map(|k| {
                (
                    engine::run(&g, &cfg(5, k), &UniformTransition),
                    engine::run(&g, &cfg(5, k), &t),
                )
            })
            .collect();
        for (name, other) in [("flat", &runs[1]), ("hashmap", &runs[2])] {
            assert_same_support_close(&runs[0].0.queries, &other.0.queries, 1e-12,
                &format!("uniform queries vs {name}"));
            assert_same_support_close(&runs[0].0.ads, &other.0.ads, 1e-12,
                &format!("uniform ads vs {name}"));
            assert_same_support_close(&runs[0].1.queries, &other.1.queries, 1e-12,
                &format!("weighted queries vs {name}"));
            prop_assert_eq!(&runs[0].0.pair_counts, &other.0.pair_counts);
            prop_assert_eq!(runs[0].0.iterations_run, other.0.iterations_run);
        }
    }

    #[test]
    fn kernels_agree_modulo_knife_edge_when_pruned(
        n_queries in 40usize..120,
        seed in 0u64..1_000_000,
    ) {
        let g = synth_graph(3, n_queries, seed, true);
        let prune = 1e-4;
        let pull = engine::run(
            &g, &cfg(6, KernelKind::Pull).with_prune_threshold(prune), &UniformTransition);
        let flat = engine::run(
            &g, &cfg(6, KernelKind::Flat).with_prune_threshold(prune), &UniformTransition);
        assert_close_modulo_prune(&pull.queries, &flat.queries, prune, 1e-12, "pruned queries");
        assert_close_modulo_prune(&pull.ads, &flat.ads, prune, 1e-12, "pruned ads");
    }

    #[test]
    fn pull_is_bit_deterministic_across_thread_counts(
        n_queries in 60usize..140,
        seed in 0u64..1_000_000,
        pruned_sel in 0u8..2,
    ) {
        let g = synth_graph(3, n_queries, seed, true);
        let prune = if pruned_sel == 1 { 1e-5 } else { 0.0 };
        let base = cfg(5, KernelKind::Pull).with_prune_threshold(prune);
        let t = WeightedTransition { kind: WeightKind::Clicks, spread: SpreadMode::Exponential };
        let serial_u = engine::run(&g, &base, &UniformTransition);
        let serial_w = engine::run(&g, &base, &t);
        for threads in [2usize, 5] {
            let par_u = engine::run(&g, &base.with_threads(threads), &UniformTransition);
            assert_bit_identical(&serial_u.queries, &par_u.queries, "uniform queries");
            assert_bit_identical(&serial_u.ads, &par_u.ads, "uniform ads");
            prop_assert_eq!(&serial_u.pair_counts, &par_u.pair_counts);
            let par_w = engine::run(&g, &base.with_threads(threads), &t);
            assert_bit_identical(&serial_w.queries, &par_w.queries, "weighted queries");
        }
    }

    #[test]
    fn pull_sharded_and_incremental_stay_bitwise(
        n_topics in 2usize..5,
        n_queries in 40usize..100,
        seed in 0u64..1_000_000,
    ) {
        // The PR 3/4 guarantees restated explicitly for the pull kernel:
        // sharded == monolithic and incremental == from-scratch, bit for
        // bit (the dedicated suites exercise these paths in depth; this
        // case pins them to KernelKind::Pull by construction).
        let g = synth_graph(n_topics, n_queries, seed, false);
        let c = cfg(5, KernelKind::Pull);
        let mono = engine::run(&g, &c, &UniformTransition);
        let sharding = Sharding::from_components(&g);
        let shard = engine::run_sharded(&g, &c, &UniformTransition, &sharding);
        assert_bit_identical(&mono.queries, &shard.queries, "sharded queries");
        assert_bit_identical(&mono.ads, &shard.ads, "sharded ads");

        let mut d = GraphDelta::new();
        d.upsert(QueryId(0), AdId(1), EdgeData::from_clicks(3));
        let g1 = d.apply(&g);
        let dirty = d.dirty_components(&g1);
        let inc = engine::run_incremental(
            &g1, &c, &UniformTransition, &mono.queries, &mono.ads, &dirty);
        let scratch = engine::run(&g1, &c, &UniformTransition);
        assert_bit_identical(&inc.run.queries, &scratch.queries, "incremental queries");
        assert_bit_identical(&inc.run.ads, &scratch.ads, "incremental ads");
    }
}

/// Seeded multi-blob bipartite graph dense enough that one Jacobi half-step
/// generates more scatter contributions than the flat accumulator's 2²⁰
/// flush threshold.
fn dense_blobs(blocks: u32, q_per: u32, a_per: u32, deg: u32, seed: u64) -> ClickGraph {
    let mut b = ClickGraphBuilder::new();
    let mut x = seed | 1;
    for blk in 0..blocks {
        let (qo, ao) = (blk * q_per, blk * a_per);
        for q in 0..q_per {
            for _ in 0..deg {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                b.add_edge(
                    QueryId(qo + q),
                    AdId(ao + ((x >> 33) % a_per as u64) as u32),
                    EdgeData::from_clicks(1 + (x % 7)),
                );
            }
        }
    }
    b.build()
}

/// Exact scatter-contribution count of the next query-side half-step:
/// `Σ_{(i,j) stored ad pairs} N(i)·N(j) + Σ_i C(N(i), 2)` — what the flat
/// kernel would have to buffer, sort, and merge.
fn query_side_contributions(g: &ClickGraph, ads: &ScoreMatrix) -> usize {
    let stored: usize = ads
        .iter()
        .map(|(i, j, _)| g.ad_degree(AdId(i)) * g.ad_degree(AdId(j)))
        .sum();
    let diagonal: usize = (0..g.n_ads())
        .map(|a| {
            let d = g.ad_degree(AdId(a as u32));
            d * (d - 1) / 2
        })
        .sum();
    stored + diagonal
}

#[test]
fn pull_kernel_is_flush_order_free_above_the_old_flush_threshold() {
    // Two components, each alone pushing a half-step past 2^20
    // contributions — the regime where `engine::accum` documents that the
    // flat path's run boundaries (which move with thread count and with
    // shard extents) could reassociate a pair's partial sums, degrading
    // sharded == monolithic to "equal modulo rounding". The pull kernel
    // never materializes contributions, so chunking must change nothing:
    // bit-identical across thread counts AND across the component stitch.
    let g = dense_blobs(2, 220, 70, 12, 0xC0FFEE);
    let c = SimrankConfig::paper()
        .with_iterations(3)
        .with_kernel(KernelKind::Pull);
    let serial = engine::run(&g, &c, &UniformTransition);
    assert!(
        query_side_contributions(&g, &serial.ads) > 1 << 20,
        "fixture must exceed the old FLUSH_AT scale, got {}",
        query_side_contributions(&g, &serial.ads)
    );

    for threads in [3usize, 8] {
        let par = engine::run(&g, &c.with_threads(threads), &UniformTransition);
        assert_bit_identical(&serial.queries, &par.queries, "threads queries");
        assert_bit_identical(&serial.ads, &par.ads, "threads ads");
    }

    let sharding = Sharding::from_components(&g);
    assert!(sharding.n_shards() >= 2, "fixture must be multi-component");
    let sharded = engine::run_sharded(&g, &c.with_threads(2), &UniformTransition, &sharding);
    assert_bit_identical(&serial.queries, &sharded.queries, "sharded queries");
    assert_bit_identical(&serial.ads, &sharded.ads, "sharded ads");
}

#[test]
fn hashmap_kernel_runs_the_full_engine_surface() {
    // The hashmap oracle is a real kernel, not a side path: diagnostics,
    // early exit, and the sharded stitch all work through it.
    let g = synth_graph(2, 50, 7, false);
    let c = cfg(4, KernelKind::Hashmap);
    let r = engine::run(&g, &c, &UniformTransition);
    assert_eq!(r.pair_counts.len(), 4);
    assert_eq!(r.max_deltas.len(), 4);
    let sharding = Sharding::from_components(&g);
    let s = engine::run_sharded(&g, &c, &UniformTransition, &sharding);
    assert_bit_identical(&r.queries, &s.queries, "hashmap sharded queries");
    let tol = engine::run(
        &g,
        &cfg(200, KernelKind::Hashmap).with_tolerance(1e-8),
        &UniformTransition,
    );
    assert!(tol.converged);
}
