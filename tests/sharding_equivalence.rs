//! Differential harness: component-sharded SimRank == whole-graph SimRank.
//!
//! Component sharding is exact because cross-component SimRank scores are
//! provably zero — the score matrix is block-diagonal over connected
//! components (see `simrankpp::graph::sharding`). This suite pins that
//! exactness end to end over proptest-generated synthetic graphs
//! (multi-topic, optional click-spam campaigns, varying density):
//!
//! * sharded scores are **bit-identical** f64s per pair, same iteration
//!   count, for both the uniform and the weighted transition;
//! * the served top-5 rewrites (the full §9.3 pipeline through
//!   [`RewriteIndex`]) are identical under `ShardStrategy::Components`;
//! * the invariant the decomposition rests on holds in the monolithic
//!   engine: every stored pair stays inside one component (equivalently,
//!   queries in different components score exactly 0.0);
//! * `Components::sizes` totals equal the graph's node counts.
//!
//! Runs in CI under `--release` too (`cargo test --release -- sharding`):
//! bit-identical stitching is only meaningful if it survives release
//! codegen.

use proptest::prelude::*;
use simrankpp::core::engine::{self, UniformTransition, WeightedTransition};
use simrankpp::core::weighted::SpreadMode;
use simrankpp::core::ShardStrategy;
use simrankpp::graph::components::connected_components;
use simrankpp::graph::sharding::Sharding;
use simrankpp::prelude::*;
use simrankpp::serve::RewriteIndex;
use simrankpp::synth::generator::generate;
use simrankpp::synth::spam::{inject_click_spam, SpamConfig};

/// One generated test world: multi-topic synth graph, optionally spammed,
/// with density controlled by the candidate cap.
fn synth_graph(
    n_topics: usize,
    n_queries: usize,
    seed: u64,
    spam: bool,
    dense: bool,
) -> ClickGraph {
    let mut gen = GeneratorConfig::tiny().with_seed(seed);
    gen.n_topics = n_topics;
    gen.n_queries = n_queries;
    gen.n_ads = (n_queries * 2 / 3).max(4);
    gen.max_ads_per_query = if dense { 12 } else { 4 };
    let g = generate(&gen).graph;
    if spam {
        inject_click_spam(
            &g,
            &SpamConfig {
                n_spam_ads: 1,
                queries_per_ad: 8,
                clicks_per_edge: 25,
                seed,
            },
        )
        .0
    } else {
        g
    }
}

fn cfg(k: usize) -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(k)
        .with_weight_kind(WeightKind::Clicks)
}

/// Asserts two score matrices store the same pairs with bit-identical f64s.
fn assert_bit_identical(
    mono: &simrankpp::core::ScoreMatrix,
    shard: &simrankpp::core::ScoreMatrix,
    what: &str,
) {
    assert_eq!(
        mono.n_pairs(),
        shard.n_pairs(),
        "{what}: pair count differs"
    );
    for ((a1, b1, v1), (a2, b2, v2)) in mono.iter().zip(shard.iter()) {
        assert_eq!((a1, b1), (a2, b2), "{what}: pair set differs");
        assert_eq!(
            v1.to_bits(),
            v2.to_bits(),
            "{what}: pair ({a1}, {b1}) drifted: {v1:e} vs {v2:e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharding_scores_bit_identical_to_monolithic(
        n_topics in 1usize..6,
        n_queries in 30usize..120,
        seed in 0u64..1_000_000,
        variant in 0u8..4,
    ) {
        let spam = variant & 1 == 1;
        let dense = variant & 2 == 2;
        let g = synth_graph(n_topics, n_queries, seed, spam, dense);
        let sharding = Sharding::from_components(&g);
        let c = cfg(5);

        let mono_u = engine::run(&g, &c, &UniformTransition);
        let shard_u = engine::run_sharded(&g, &c, &UniformTransition, &sharding);
        prop_assert_eq!(mono_u.iterations_run, shard_u.iterations_run);
        assert_bit_identical(&mono_u.queries, &shard_u.queries, "uniform queries");
        assert_bit_identical(&mono_u.ads, &shard_u.ads, "uniform ads");
        prop_assert_eq!(&mono_u.pair_counts, &shard_u.pair_counts);

        let t = WeightedTransition { kind: WeightKind::Clicks, spread: SpreadMode::Exponential };
        let mono_w = engine::run(&g, &c, &t);
        let shard_w = engine::run_sharded(&g, &c, &t, &sharding);
        prop_assert_eq!(mono_w.iterations_run, shard_w.iterations_run);
        assert_bit_identical(&mono_w.queries, &shard_w.queries, "weighted queries");
        assert_bit_identical(&mono_w.ads, &shard_w.ads, "weighted ads");
    }

    #[test]
    fn sharding_config_strategy_front_ends_agree(
        n_queries in 30usize..100,
        seed in 0u64..1_000_000,
    ) {
        // The same equivalence through the public front-ends and the
        // config knob (what `serve build` uses), pruning enabled.
        let g = synth_graph(3, n_queries, seed, false, false);
        let off = cfg(6).with_prune_threshold(1e-4);
        let on = off.with_sharding(ShardStrategy::Components);

        let mono = simrankpp::core::simrank(&g, &off);
        let shard = simrankpp::core::simrank(&g, &on);
        assert_bit_identical(&mono.queries, &shard.queries, "simrank queries");
        assert_bit_identical(&mono.ads, &shard.ads, "simrank ads");

        let ev = EvidenceKind::Geometric;
        let mono_w = simrankpp::core::weighted_simrank(&g, &off, ev);
        let shard_w = simrankpp::core::weighted_simrank(&g, &on, ev);
        assert_bit_identical(&mono_w.queries, &shard_w.queries, "weighted queries");
        assert_bit_identical(&mono_w.raw_queries, &shard_w.raw_queries, "raw queries");
    }

    #[test]
    fn sharding_served_top5_rewrites_identical(
        n_queries in 30usize..90,
        seed in 0u64..1_000_000,
        spam in 0u8..2,
    ) {
        // End to end: the full §9.3 pipeline (top-100 → stem-dedup → bid
        // filter off → top-5), precomputed for every query, must not change
        // under component sharding.
        let g = synth_graph(4, n_queries, seed, spam == 1, false);
        let build = |sharding: ShardStrategy| {
            let c = cfg(7).with_sharding(sharding);
            let method = Method::compute(MethodKind::WeightedSimrank, &g, &c);
            let rewriter = Rewriter::new(&g, method, RewriterConfig::default());
            RewriteIndex::build(&rewriter, None, 1)
        };
        let mono = build(ShardStrategy::Off);
        let shard = build(ShardStrategy::Components);
        prop_assert_eq!(mono.n_entries(), shard.n_entries());
        for q in g.queries() {
            let m = mono.rewrites_of(q);
            let s = shard.rewrites_of(q);
            prop_assert_eq!(m.ids(), s.ids(), "rewrite targets differ for query {}", q);
            prop_assert_eq!(m.scores(), s.scores(), "rewrite scores differ for query {}", q);
        }
    }

    #[test]
    fn sharding_invariant_no_cross_component_scores(
        n_topics in 1usize..7,
        n_queries in 20usize..140,
        seed in 0u64..1_000_000,
    ) {
        // The invariant that makes sharding exact: the monolithic engine
        // never stores a pair straddling two components, i.e. queries (and
        // ads) in different components have score exactly 0.0.
        let g = synth_graph(n_topics, n_queries, seed, false, true);
        let labels = connected_components(&g);
        let r = simrankpp::core::simrank(&g, &cfg(8));
        for (a, b, v) in r.queries.iter() {
            prop_assert!(v > 0.0);
            prop_assert_eq!(
                labels.query_label[a as usize], labels.query_label[b as usize],
                "cross-component query pair ({}, {}) scored {}", a, b, v
            );
        }
        for (a, b, _) in r.ads.iter() {
            prop_assert_eq!(labels.ad_label[a as usize], labels.ad_label[b as usize]);
        }
        // Spot-check the contrapositive read-out: a pair from different
        // components reads exactly 0.0 through the matrix API.
        let mut cross = None;
        'outer: for q1 in g.queries() {
            for q2 in g.queries() {
                if labels.query_label[q1.index()] != labels.query_label[q2.index()] {
                    cross = Some((q1, q2));
                    break 'outer;
                }
            }
        }
        if let Some((q1, q2)) = cross {
            prop_assert_eq!(r.queries.get(q1.0, q2.0), 0.0);
        }
    }

    #[test]
    fn sharding_component_sizes_total_node_counts(
        n_topics in 1usize..7,
        n_queries in 20usize..140,
        seed in 0u64..1_000_000,
    ) {
        let g = synth_graph(n_topics, n_queries, seed, false, false);
        let c = connected_components(&g);
        let sizes = c.sizes();
        prop_assert_eq!(sizes.len(), c.count);
        let total_q: usize = sizes.iter().map(|s| s.0).sum();
        let total_a: usize = sizes.iter().map(|s| s.1).sum();
        prop_assert_eq!(total_q, g.n_queries());
        prop_assert_eq!(total_a, g.n_ads());
        // And the sharding partitions exactly the non-trivial components.
        let sharding = Sharding::from_components(&g);
        sharding.validate_disjoint().unwrap();
        prop_assert_eq!(sharding.n_shards() + sharding.n_trivial, c.count);
    }
}

#[test]
fn sharding_remap_round_trip_is_identity() {
    // shard-local → global → shard-local over every node of every shard.
    let g = synth_graph(4, 80, 7, false, true);
    let sharding = Sharding::from_components(&g);
    assert!(sharding.n_shards() >= 1);
    for shard in &sharding.shards {
        for q in shard.graph.queries() {
            let global = shard.mapping.to_parent_query(q);
            assert_eq!(shard.mapping.to_sub_query(global), Some(q));
        }
        for a in shard.graph.ads() {
            let global = shard.mapping.to_parent_ad(a);
            assert_eq!(shard.mapping.to_sub_ad(global), Some(a));
        }
    }
}

#[test]
fn sharding_handles_singleton_and_empty_components() {
    // A graph that is *only* edge cases: an isolated query, an isolated ad,
    // a 1×1 edge component, and one real component.
    let mut b = ClickGraphBuilder::new();
    b.reserve_queries(5);
    b.reserve_ads(5);
    b.add_edge(QueryId(0), AdId(0), EdgeData::from_clicks(1)); // 1×1: trivial
    b.add_edge(QueryId(1), AdId(1), EdgeData::from_clicks(2)); // real K2,2
    b.add_edge(QueryId(1), AdId(2), EdgeData::from_clicks(1));
    b.add_edge(QueryId(2), AdId(1), EdgeData::from_clicks(1));
    b.add_edge(QueryId(2), AdId(2), EdgeData::from_clicks(3));
    // q3, q4, a3, a4 isolated.
    let g = b.build();
    let sharding = Sharding::from_components(&g);
    assert_eq!(sharding.n_shards(), 1);
    // Trivial: the 1×1 edge component plus the four isolated singletons.
    assert_eq!(sharding.n_trivial, 5);

    let c = cfg(6);
    let mono = engine::run(&g, &c, &UniformTransition);
    let shard = engine::run_sharded(&g, &c, &UniformTransition, &sharding);
    assert_bit_identical(&mono.queries, &shard.queries, "edge-case queries");
    assert_bit_identical(&mono.ads, &shard.ads, "edge-case ads");
    // Dimensions are the parent's, not the shard's.
    assert_eq!(shard.queries.n_nodes(), 5);
    assert_eq!(shard.ads.n_nodes(), 5);
    // Isolated / trivial nodes read 0 off-diagonal, 1 on the diagonal.
    assert_eq!(shard.queries.get(3, 4), 0.0);
    assert_eq!(shard.queries.get(3, 3), 1.0);
}

#[test]
fn sharding_extraction_strategy_stays_block_local_and_bounded() {
    // Extracted sharding is approximate (cut edges change scores — SimRank
    // is not monotone in the edge set), so no bit-level claim holds. What
    // must hold: every stored pair lies inside one block of an overlap-free
    // cover, scores stay in (0, 1], and pairs from different *components*
    // of the parent graph still never appear (blocks are induced subgraphs,
    // so they cannot bridge components).
    let g = synth_graph(5, 120, 11, false, true);
    let approx = simrankpp::core::simrank(&g, &cfg(5).with_sharding(ShardStrategy::Extracted(3)));
    let labels = connected_components(&g);
    for (a, b, v) in approx.queries.iter() {
        assert!(v > 0.0 && v <= 1.0 + 1e-12);
        assert_eq!(
            labels.query_label[a as usize], labels.query_label[b as usize],
            "extracted sharding bridged two components: ({a}, {b})"
        );
    }
    let sharding = simrankpp::partition::extraction_sharding(&g, 3);
    sharding.validate_disjoint().unwrap();
    assert!(!sharding.exact);
}
