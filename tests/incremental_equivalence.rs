//! Differential harness: incremental recompute == from-scratch recompute.
//!
//! PR 3's sharding harness proved the score matrix block-diagonal over
//! connected components; this suite pins the *temporal* consequence: after a
//! [`GraphDelta`], recomputing only the dirty components and reusing every
//! clean block ([`engine::run_incremental`]) reproduces the from-scratch run
//! over the updated graph **bit for bit** at test scale — for insert-only
//! deltas, component-merging inserts, removals (splits), and mixed batches —
//! and the serving layer's [`RewriteIndex::rebuild_incremental`] reproduces
//! a full index rebuild the same way. Alongside the equivalences, the suite
//! proves the accounting ISSUE 4 demands:
//!
//! * delta application is equivalent to rebuilding the graph from the
//!   concatenated edge list (insert-only; duplicate edges accumulate
//!   identically — same [`EdgeData::merge`] order — so even the merged ECR
//!   f64s are bit-identical);
//! * `dirty_components` is *sound*: every changed, created, or removed
//!   score pair lies in a dirty component of the new labeling;
//! * clean components are strictly zero-recompute: the reused pair count
//!   equals exactly the previous matrix's clean-endpoint pairs, recomputed
//!   and reused counts add up to the stitched total, and every
//!   clean-component pair of the result is the previous generation's f64
//!   verbatim.
//!
//! Runs in CI under `--release` too (`cargo test --release -- incremental`):
//! bit-identical stitching must survive optimized codegen.

use proptest::prelude::*;
use simrankpp::core::engine::{self, run_incremental, UniformTransition, WeightedTransition};
use simrankpp::core::weighted::SpreadMode;
use simrankpp::core::{RewriterConfig, ScoreMatrix};
use simrankpp::graph::delta::GraphDelta;
use simrankpp::prelude::*;
use simrankpp::serve::RewriteIndex;
use simrankpp::synth::generator::generate;

fn synth_graph(n_topics: usize, n_queries: usize, seed: u64, dense: bool) -> ClickGraph {
    let mut gen = GeneratorConfig::tiny().with_seed(seed);
    gen.n_topics = n_topics;
    gen.n_queries = n_queries;
    gen.n_ads = (n_queries * 2 / 3).max(4);
    gen.max_ads_per_query = if dense { 12 } else { 4 };
    generate(&gen).graph
}

fn cfg(k: usize) -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(k)
        .with_weight_kind(WeightKind::Clicks)
}

/// A deterministic mixed delta over `g`'s id space: `n_upserts` edge
/// upserts (some onto existing edges, some new, some to brand-new node ids
/// when `grow`), plus up to `n_removals` removals of existing edges.
fn mixed_delta(
    g: &ClickGraph,
    seed: u64,
    n_upserts: usize,
    n_removals: usize,
    grow: bool,
) -> GraphDelta {
    let mut d = GraphDelta::new();
    let mut x = seed | 1;
    let mut step = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    let nq = g.n_queries() as u64;
    let na = g.n_ads() as u64;
    for i in 0..n_upserts {
        let grow_this = grow && i % 5 == 4;
        let q = if grow_this {
            nq + (step() % 3)
        } else {
            step() % nq.max(1)
        };
        let a = step() % na.max(1);
        d.upsert(
            QueryId(q as u32),
            AdId(a as u32),
            EdgeData::from_clicks(1 + step() % 7),
        );
    }
    let edges: Vec<(QueryId, AdId)> = g.edges().map(|(q, a, _)| (q, a)).collect();
    for _ in 0..n_removals {
        if edges.is_empty() {
            break;
        }
        let (q, a) = edges[(step() % edges.len() as u64) as usize];
        d.remove(q, a);
    }
    d
}

fn assert_bit_identical(a: &ScoreMatrix, b: &ScoreMatrix, what: &str) {
    assert_eq!(a.n_pairs(), b.n_pairs(), "{what}: pair count differs");
    for ((x1, y1, v1), (x2, y2, v2)) in a.iter().zip(b.iter()) {
        assert_eq!((x1, y1), (x2, y2), "{what}: pair set differs");
        assert_eq!(
            v1.to_bits(),
            v2.to_bits(),
            "{what}: pair ({x1}, {y1}) drifted: {v1:e} vs {v2:e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn incremental_delta_apply_equals_concatenated_rebuild(
        n_queries in 20usize..100,
        seed in 0u64..1_000_000,
        n_upserts in 1usize..25,
    ) {
        // Insert-only deltas are order-free: applying the delta must equal
        // rebuilding from the concatenation of the old edge list and the
        // delta's edges — including duplicate-edge weight accumulation,
        // which must merge in the same order and therefore produce
        // bit-identical ECR floats.
        let g0 = synth_graph(3, n_queries, seed, false);
        let d = mixed_delta(&g0, seed ^ 0xD5, n_upserts, 0, true);
        let applied = d.apply(&g0);

        let mut b = ClickGraphBuilder::new();
        b.reserve_queries(g0.n_queries() as u32);
        b.reserve_ads(g0.n_ads() as u32);
        for (q, a, e) in g0.edges() {
            b.add_edge(q, a, *e);
        }
        for op in d.ops() {
            match *op {
                simrankpp::graph::delta::DeltaOp::Upsert { query, ad, data } => {
                    b.add_edge(query, ad, data)
                }
                simrankpp::graph::delta::DeltaOp::Remove { .. } => unreachable!(),
            }
        }
        let concat = b.build();

        prop_assert_eq!(applied.n_queries(), concat.n_queries());
        prop_assert_eq!(applied.n_ads(), concat.n_ads());
        prop_assert_eq!(applied.n_edges(), concat.n_edges());
        for (q, a, e) in concat.edges() {
            let got = applied.edge(q, a).expect("edge missing after apply");
            prop_assert_eq!(got.impressions, e.impressions);
            prop_assert_eq!(got.clicks, e.clicks);
            prop_assert_eq!(
                got.expected_click_rate.to_bits(),
                e.expected_click_rate.to_bits(),
                "ECR accumulation drifted on edge ({}, {})", q, a
            );
        }
        applied.validate().unwrap();
    }

    #[test]
    fn incremental_dirty_components_are_sound(
        n_queries in 20usize..100,
        seed in 0u64..1_000_000,
        n_upserts in 0usize..12,
        n_removals in 0usize..6,
    ) {
        // Soundness: every score that changed (value drift, new pair, or
        // vanished pair) lies in a dirty component of the new labeling.
        let g0 = synth_graph(4, n_queries, seed, true);
        let d = mixed_delta(&g0, seed ^ 0x50F7, n_upserts, n_removals, true);
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);

        let c = cfg(5);
        let before = engine::run(&g0, &c, &UniformTransition);
        let after = engine::run(&g1, &c, &UniformTransition);

        let changed_pairs = |old: &ScoreMatrix, new: &ScoreMatrix| {
            let mut out: Vec<(u32, u32)> = Vec::new();
            for (a, b, v) in new.iter() {
                if old.get(a, b).to_bits() != v.to_bits() {
                    out.push((a, b));
                }
            }
            for (a, b, v) in old.iter() {
                if new.get(a, b).to_bits() != v.to_bits() {
                    out.push((a, b));
                }
            }
            out
        };
        for (a, b) in changed_pairs(&before.queries, &after.queries) {
            prop_assert!(
                dirty.query_dirty(QueryId(a)) && dirty.query_dirty(QueryId(b)),
                "changed query pair ({}, {}) is not in a dirty component", a, b
            );
        }
        for (a, b) in changed_pairs(&before.ads, &after.ads) {
            prop_assert!(
                dirty.ad_dirty(AdId(a)) && dirty.ad_dirty(AdId(b)),
                "changed ad pair ({}, {}) is not in a dirty component", a, b
            );
        }
    }

    #[test]
    fn incremental_run_bit_identical_to_scratch(
        n_queries in 20usize..90,
        seed in 0u64..1_000_000,
        n_upserts in 1usize..10,
        n_removals in 0usize..5,
        weighted in 0u8..2,
    ) {
        let g0 = synth_graph(4, n_queries, seed, false);
        let d = mixed_delta(&g0, seed ^ 0x1AC, n_upserts, n_removals, true);
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        let c = cfg(5).with_prune_threshold(1e-4);

        macro_rules! run_case {
            ($t:expr) => {{
                let prev = engine::run(&g0, &c, $t);
                let inc = run_incremental(&g1, &c, $t, &prev.queries, &prev.ads, &dirty);
                let scratch = engine::run(&g1, &c, $t);
                assert_bit_identical(&inc.run.queries, &scratch.queries, "queries");
                assert_bit_identical(&inc.run.ads, &scratch.ads, "ads");

                // Accounting: reused == prev's clean-endpoint pairs, and the
                // stitched total decomposes exactly.
                let clean_prev_q = prev.queries.iter()
                    .filter(|&(a, b, _)| {
                        !dirty.query_dirty(QueryId(a)) && !dirty.query_dirty(QueryId(b))
                    })
                    .count();
                prop_assert_eq!(inc.reused_query_pairs, clean_prev_q);
                prop_assert_eq!(
                    inc.reused_query_pairs + inc.recomputed_query_pairs,
                    inc.run.queries.n_pairs()
                );
                prop_assert_eq!(
                    inc.reused_ad_pairs + inc.recomputed_ad_pairs,
                    inc.run.ads.n_pairs()
                );
                // Strictly zero-recompute for clean components: every
                // clean-endpoint pair of the result is the previous
                // generation's value verbatim.
                for (a, b, v) in inc.run.queries.iter() {
                    if !dirty.query_dirty(QueryId(a)) {
                        prop_assert_eq!(v.to_bits(), prev.queries.get(a, b).to_bits());
                    }
                }
                inc
            }};
        }

        if weighted == 1 {
            let t = WeightedTransition { kind: WeightKind::Clicks, spread: SpreadMode::Exponential };
            run_case!(&t);
        } else {
            run_case!(&UniformTransition);
        }
    }

    #[test]
    fn incremental_index_rebuild_equals_full_rebuild(
        n_queries in 20usize..80,
        seed in 0u64..1_000_000,
        n_upserts in 1usize..8,
        n_removals in 0usize..4,
    ) {
        // End to end through the serving layer: refreshing only dirty rows
        // (and copying clean ones) reproduces a from-scratch index build
        // over the new graph, targets and scores bit-identical.
        let g0 = synth_graph(3, n_queries, seed, false);
        let d = mixed_delta(&g0, seed ^ 0x1DE, n_upserts, n_removals, false);
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        let c = cfg(5);

        let build = |g: &ClickGraph| {
            let method = Method::compute(MethodKind::WeightedSimrank, g, &c);
            let rewriter = Rewriter::new(g, method, RewriterConfig::default());
            RewriteIndex::build(&rewriter, None, 1)
        };
        let old_index = build(&g0);
        let (inc, stats) = old_index
            .rebuild_incremental(&g1, &dirty, &c, &RewriterConfig::default(), None)
            .unwrap();
        inc.validate().unwrap();
        let full = build(&g1);

        prop_assert_eq!(inc.n_queries(), full.n_queries());
        prop_assert_eq!(inc.n_entries(), full.n_entries());
        for q in g1.queries() {
            prop_assert_eq!(
                inc.rewrites_of(q).ids(), full.rewrites_of(q).ids(),
                "targets differ for query {}", q
            );
            prop_assert_eq!(
                inc.rewrites_of(q).scores(), full.rewrites_of(q).scores(),
                "scores differ for query {}", q
            );
        }
        prop_assert_eq!(stats.refreshed_queries + stats.copied_queries, g1.n_queries());
        prop_assert_eq!(stats.refreshed_queries, dirty.dirty_query_count());
    }
}

#[test]
fn incremental_insert_only_merge_and_removal_cases() {
    // The three delta shapes ISSUE 4 names, pinned deterministically on a
    // multi-component graph: (a) insert within a component, (b) insert
    // bridging two components (merge), (c) removal splitting a component.
    let g0 = synth_graph(5, 80, 42, false);
    let c = cfg(6);
    let prev = engine::run(&g0, &c, &UniformTransition);
    let components = simrankpp::graph::components::connected_components(&g0);
    assert!(components.count >= 2, "fixture must be multi-component");

    // (a) insert-only, component-local.
    let (q0, a0, _) = g0.edges().next().unwrap();
    let mut insert = GraphDelta::new();
    insert.upsert(q0, a0, EdgeData::from_clicks(5));

    // (b) merge: connect two queries from different components via a new ad
    // edge to the second component's ad.
    let mut merge = GraphDelta::new();
    let other_q = g0
        .queries()
        .find(|&q| {
            components.query_label[q.index()] != components.query_label[q0.index()]
                && g0.query_degree(q) > 0
        })
        .expect("a second component with a query");
    let (other_ads, _) = g0.ads_of(other_q);
    merge.upsert(q0, other_ads[0], EdgeData::from_clicks(2));

    // (c) removal.
    let mut removal = GraphDelta::new();
    removal.remove(q0, a0);

    for (name, d) in [("insert", insert), ("merge", merge), ("removal", removal)] {
        let g1 = d.apply(&g0);
        let dirty = d.dirty_components(&g1);
        let inc = run_incremental(
            &g1,
            &c,
            &UniformTransition,
            &prev.queries,
            &prev.ads,
            &dirty,
        );
        let scratch = engine::run(&g1, &c, &UniformTransition);
        assert_bit_identical(&inc.run.queries, &scratch.queries, name);
        assert_bit_identical(&inc.run.ads, &scratch.ads, name);
        assert!(
            inc.n_clean_components > 0,
            "{name}: fixture should leave some components clean"
        );
        assert!(inc.reused_query_pairs > 0, "{name}: nothing was reused");
    }
}
