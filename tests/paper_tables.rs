//! Integration tests: the paper's worked examples, digit for digit, through
//! the public facade API.

use simrankpp::core::complete_bipartite::{km2_evidence_pair_iterates, km2_pair_iterates};
use simrankpp::core::evidence::{evidence_simrank, EvidenceKind};
use simrankpp::core::naive::naive_scores;
use simrankpp::core::simrank::simrank;
use simrankpp::graph::fixtures::{figure3_graph, figure4_k12, figure4_k22};
use simrankpp::prelude::*;

fn paper_cfg(iterations: usize) -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(iterations)
        .with_weight_kind(WeightKind::Clicks)
}

#[test]
fn table1_common_ad_counts() {
    let g = figure3_graph();
    let m = naive_scores(&g);
    let q = |n: &str| g.query_by_name(n).unwrap().0;
    let rows = [
        (
            "pc",
            &[
                ("camera", 1.0),
                ("digital camera", 1.0),
                ("tv", 0.0),
                ("flower", 0.0),
            ][..],
        ),
        (
            "camera",
            &[("digital camera", 2.0), ("tv", 1.0), ("flower", 0.0)][..],
        ),
        ("digital camera", &[("tv", 1.0), ("flower", 0.0)][..]),
        ("tv", &[("flower", 0.0)][..]),
    ];
    for (a, pairs) in rows {
        for (b, want) in pairs {
            assert_eq!(m.get(q(a), q(b)), *want, "naive({a},{b})");
        }
    }
}

#[test]
fn table2_simrank_converged() {
    let g = figure3_graph();
    let r = simrank(&g, &paper_cfg(100));
    let q = |n: &str| g.query_by_name(n).unwrap().0;
    assert!((r.queries.get(q("pc"), q("camera")) - 0.619).abs() < 5e-4);
    assert!((r.queries.get(q("pc"), q("tv")) - 0.437).abs() < 5e-4);
    assert!((r.queries.get(q("camera"), q("digital camera")) - 0.619).abs() < 5e-4);
    assert_eq!(r.queries.get(q("flower"), q("pc")), 0.0);
}

#[test]
fn table3_iteration_columns() {
    let k22 = figure4_k22();
    let k12 = figure4_k12();
    let want_k22 = [0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744];
    for (k, want) in want_k22.iter().enumerate() {
        let engine = simrank(&k22, &paper_cfg(k + 1)).queries.get(0, 1);
        assert!((engine - want).abs() < 1e-9, "k22 iteration {}", k + 1);
        let closed = *km2_pair_iterates(2, 0.8, 0.8, k + 1).last().unwrap();
        assert!((closed - want).abs() < 1e-9);
        let k12_score = simrank(&k12, &paper_cfg(k + 1)).queries.get(0, 1);
        assert!((k12_score - 0.8).abs() < 1e-12);
    }
}

#[test]
fn table4_evidence_columns() {
    let k22 = figure4_k22();
    let want = [0.3, 0.42, 0.468, 0.4872, 0.49488, 0.497952, 0.4991808];
    for (k, want) in want.iter().enumerate() {
        let engine = evidence_simrank(&k22, &paper_cfg(k + 1), EvidenceKind::Geometric)
            .queries
            .get(0, 1);
        assert!((engine - want).abs() < 1e-9, "iteration {}", k + 1);
        let closed = *km2_evidence_pair_iterates(2, 0.8, 0.8, k + 1, EvidenceKind::Geometric)
            .last()
            .unwrap();
        assert!((closed - want).abs() < 1e-9);
    }
}

#[test]
fn section6_crossover_complaint_and_fix() {
    // §6: plain SimRank ranks pc-camera above camera-digital camera forever;
    // §7: evidence reverses that from iteration 2.
    let k22 = figure4_k22();
    let k12 = figure4_k12();
    for k in 1..=10 {
        let plain22 = simrank(&k22, &paper_cfg(k)).queries.get(0, 1);
        let plain12 = simrank(&k12, &paper_cfg(k)).queries.get(0, 1);
        assert!(plain12 > plain22, "plain SimRank must prefer K1,2 at k={k}");
    }
    for k in 2..=10 {
        let ev22 = evidence_simrank(&k22, &paper_cfg(k), EvidenceKind::Geometric)
            .queries
            .get(0, 1);
        let ev12 = evidence_simrank(&k12, &paper_cfg(k), EvidenceKind::Geometric)
            .queries
            .get(0, 1);
        assert!(ev22 > ev12, "evidence must prefer K2,2 at k={k}");
    }
}
