//! Segmented-pipeline ⇔ monolithic differential suite.
//!
//! The beyond-RAM path must be invisible in the output: a store written in
//! component-group segments reassembles the original graph exactly, an
//! index built segment-at-a-time (`RewriteIndex::build_segmented`) equals
//! the monolithic build bit-for-bit (same targets, same score bits, same
//! names — the monotone local→global id maps preserve equal-score
//! tie-breaks), and a snapshot served zero-copy through `MappedIndex`
//! answers identically whether the bytes are mmapped or heap-read.
//!
//! Property tests drive all three over random bipartite click graphs and
//! random segment targets; a fixed synth-world case covers a realistic
//! shape on top.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use simrankpp::core::ShardStrategy;
use simrankpp::graph::segments::{write_segmented, SegmentedStore};
use simrankpp::prelude::*;
use simrankpp::serve::{MappedIndex, RewriteIndex};
use simrankpp::synth::generator::generate;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per invocation so proptest cases never collide.
fn tmp(name: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("simrankpp_segeq_{}_{n}_{name}", std::process::id()))
}

/// Named bipartite graph from raw `(query, ad, clicks)` triples; repeated
/// pairs accumulate, names make the by-name serving path exercisable.
fn graph_from_edges(edges: &[(u8, u8, u8)]) -> ClickGraph {
    let mut b = ClickGraphBuilder::new();
    for &(q, a, c) in edges {
        b.add_named(
            &format!("q{q}"),
            &format!("ad{a}"),
            EdgeData::from_clicks(c as u64 + 1),
        );
    }
    b.build()
}

fn cfg() -> SimrankConfig {
    SimrankConfig::default()
        .with_iterations(5)
        .with_prune_threshold(1e-4)
        .with_sharding(ShardStrategy::Components)
}

fn monolithic_index(g: &ClickGraph) -> RewriteIndex {
    let method = Method::compute(MethodKind::WeightedSimrank, g, &cfg());
    let rewriter = Rewriter::new(g, method, RewriterConfig::default());
    RewriteIndex::build(&rewriter, None, 1)
}

fn segmented_index(g: &ClickGraph, target_nodes: usize, path: &Path) -> RewriteIndex {
    write_segmented(g, path, target_nodes).unwrap();
    let mut store = SegmentedStore::open(path).unwrap();
    RewriteIndex::build_segmented(
        &mut store,
        MethodKind::WeightedSimrank,
        &cfg(),
        RewriterConfig::default(),
        None,
    )
    .unwrap()
}

/// Every observable of two indexes, compared exactly (scores by f64 `==`:
/// the contract is identical bits, not mere closeness).
fn assert_indexes_identical(a: &RewriteIndex, b: &RewriteIndex) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.n_queries(), b.n_queries());
    prop_assert_eq!(a.n_entries(), b.n_entries());
    for q in 0..a.n_queries() as u32 {
        let q = QueryId(q);
        let (ra, rb) = (a.rewrites_of(q), b.rewrites_of(q));
        prop_assert_eq!(ra.ids(), rb.ids(), "targets differ at {:?}", q);
        prop_assert_eq!(ra.scores(), rb.scores(), "score bits differ at {:?}", q);
        prop_assert_eq!(a.query_name(q), b.query_name(q));
    }
    Ok(())
}

fn edge_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((0u8..40, 0u8..30, 0u8..20), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segmented_store_reassembles_the_graph_exactly(
        edges in edge_strategy(),
        target in 1usize..64,
    ) {
        let g = graph_from_edges(&edges);
        let path = tmp("store.seg");
        write_segmented(&g, &path, target).unwrap();
        let mut store = SegmentedStore::open(&path).unwrap();
        prop_assert_eq!(store.total_queries(), g.n_queries() as u64);
        prop_assert_eq!(store.total_edges(), g.n_edges() as u64);
        let reassembled = store.load_all().unwrap();
        prop_assert_eq!(g.fingerprint(), reassembled.fingerprint());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segmented_build_matches_monolithic_bit_for_bit(
        edges in edge_strategy(),
        target in 1usize..48,
    ) {
        let g = graph_from_edges(&edges);
        let mono = monolithic_index(&g);
        let path = tmp("build.seg");
        let seg = segmented_index(&g, target, &path);
        assert_indexes_identical(&mono, &seg)?;
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_and_heap_loading_serve_identical_answers(
        edges in edge_strategy(),
    ) {
        let g = graph_from_edges(&edges);
        let index = monolithic_index(&g);
        let path = tmp("snap.idx");
        index.write_snapshot(File::create(&path).unwrap()).unwrap();

        let mapped = MappedIndex::open(&path).unwrap();
        let heap = MappedIndex::open_heap(&path).unwrap();
        prop_assert_eq!(mapped.n_queries(), index.n_queries());
        prop_assert_eq!(heap.n_queries(), index.n_queries());
        for q in 0..index.n_queries() as u32 {
            let q = QueryId(q);
            let want = index.rewrites_of(q);
            let (mt, ms) = mapped.row(q);
            let (ht, hs) = heap.row(q);
            prop_assert_eq!(mt, want.ids());
            prop_assert_eq!(ms, want.scores());
            prop_assert_eq!(ht, want.ids());
            prop_assert_eq!(hs, want.scores());
            prop_assert_eq!(mapped.query_name(q), index.query_name(q));
        }
        for q in 0..g.n_queries() as u32 {
            let name = g.query_name(QueryId(q)).unwrap();
            prop_assert_eq!(mapped.lookup(name), index.lookup_id(name));
            prop_assert_eq!(heap.lookup(name), index.lookup_id(name));
        }
        prop_assert_eq!(mapped.lookup("no such query"), None);
        assert_indexes_identical(&index, &mapped.to_owned_index().unwrap())?;
        std::fs::remove_file(&path).ok();
    }
}

/// The same three equivalences on one realistically shaped synth world —
/// a fixed case that fails loudly without proptest shrinking in the way.
#[test]
fn synth_world_survives_the_full_segmented_round_trip() {
    let g = generate(&GeneratorConfig::tiny()).graph;
    let mono = monolithic_index(&g);

    let store_path = tmp("synth.seg");
    let seg = segmented_index(&g, 16, &store_path);
    assert_eq!(mono.n_entries(), seg.n_entries());
    for q in 0..g.n_queries() as u32 {
        let q = QueryId(q);
        assert_eq!(mono.rewrites_of(q).ids(), seg.rewrites_of(q).ids());
        assert_eq!(mono.rewrites_of(q).scores(), seg.rewrites_of(q).scores());
    }

    let snap_path = tmp("synth.idx");
    seg.write_snapshot(File::create(&snap_path).unwrap())
        .unwrap();
    let mapped = MappedIndex::open(&snap_path).unwrap();
    mapped.verify_deep().unwrap();
    for q in 0..g.n_queries() as u32 {
        let q = QueryId(q);
        let (t, s) = mapped.row(q);
        assert_eq!(t, mono.rewrites_of(q).ids());
        assert_eq!(s, mono.rewrites_of(q).scores());
    }
    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&snap_path).ok();
}
