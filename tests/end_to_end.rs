//! Integration tests: the full pipeline across crates — generator →
//! partitioner → methods → rewriter → judge → metrics.

use simrankpp::eval::report::render_full;
use simrankpp::eval::{run_experiment, ExperimentConfig};
use simrankpp::partition::{extract_subgraphs, ExtractConfig};
use simrankpp::prelude::*;
use simrankpp::synth::generator::generate;
use simrankpp::synth::EditorialJudge;

fn fast_experiment() -> ExperimentConfig {
    let mut c = ExperimentConfig::fast();
    c.simrank = c.simrank.with_iterations(5);
    c
}

#[test]
fn full_experiment_produces_paper_shape() {
    let report = run_experiment(&fast_experiment());
    assert_eq!(report.methods.len(), 4);
    assert!(report.eval_queries > 0, "evaluation set must be nonempty");

    let m = |name: &str| {
        report
            .methods
            .iter()
            .find(|m| m.method == name)
            .unwrap_or_else(|| panic!("missing method {name}"))
    };
    // Figure 8 shape: SimRank-family coverage at least Pearson's.
    assert!(m("Simrank").coverage >= m("Pearson").coverage);
    assert!(m("evidence-based Simrank").coverage >= m("Pearson").coverage);
    // Figure 11 shape: SimRank-family depth at least Pearson's.
    assert!(m("Simrank").mean_depth >= m("Pearson").mean_depth);
    // Figure 12 ran with three methods.
    assert_eq!(report.desirability.len(), 3);
    // Simrank and evidence-based are identical in the desirability
    // experiment (evidence zeroes both candidates; raw breaks the tie).
    assert_eq!(
        report.desirability[0].correct, report.desirability[1].correct,
        "Simrank and evidence-based must agree on every trial"
    );
}

#[test]
fn report_renders_without_panic() {
    let report = run_experiment(&fast_experiment());
    let text = render_full(&report);
    for needle in [
        "Table 5",
        "Figure 8",
        "Figure 9",
        "Figure 10",
        "Figure 11",
        "Figure 12",
    ] {
        assert!(text.contains(needle), "report missing {needle}");
    }
}

#[test]
fn report_serializes_to_json() {
    let report = run_experiment(&fast_experiment());
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("coverage"));
    assert!(json.contains("desirability"));
}

#[test]
fn generated_rewrites_are_judgeable_and_mostly_on_topic() {
    // Weighted SimRank on the raw synthetic graph should put most of its
    // top rewrites within grade 1-3 (not mismatches) for popular queries.
    let dataset = generate(&GeneratorConfig::tiny());
    let judge = EditorialJudge::new(&dataset.world);
    let config = SimrankConfig::paper().with_iterations(5);
    let method = Method::compute(MethodKind::WeightedSimrank, &dataset.graph, &config);
    let rewriter = Rewriter::new(&dataset.graph, method, RewriterConfig::default());

    let mut graded = 0usize;
    let mut ok = 0usize;
    for q in dataset.graph.queries() {
        for r in rewriter.rewrites(q, None) {
            graded += 1;
            if judge.judge(q, r.query) != Grade::Mismatch {
                ok += 1;
            }
        }
    }
    assert!(graded > 10, "need a meaningful number of rewrites");
    assert!(
        ok as f64 / graded as f64 > 0.5,
        "too many mismatches: {ok}/{graded}"
    );
}

#[test]
fn extraction_plus_rewriting_composes() {
    // Rewrites computed on an extracted subgraph map back to parent ids.
    let dataset = generate(&GeneratorConfig::tiny());
    let subs = extract_subgraphs(
        &dataset.graph,
        &ExtractConfig {
            n_subgraphs: 1,
            min_size: 8,
            max_size: 60,
            ..ExtractConfig::default()
        },
    );
    assert!(!subs.is_empty());
    let sub = &subs[0];
    let config = SimrankConfig::paper().with_iterations(5);
    let method = Method::compute(MethodKind::Simrank, &sub.graph, &config);
    let rewriter = Rewriter::new(&sub.graph, method, RewriterConfig::default());
    let mut any = false;
    for q in sub.graph.queries() {
        for r in rewriter.rewrites(q, None) {
            let parent = sub.mapping.to_parent_query(r.query);
            // Parent id resolves to the same display name.
            assert_eq!(
                dataset.graph.query_name(parent),
                sub.graph.query_name(r.query)
            );
            any = true;
        }
    }
    assert!(any, "subgraph must produce at least one rewrite");
}

#[test]
fn tsv_roundtrip_preserves_method_scores() {
    // Serialize the graph, read it back, recompute — identical scores.
    use simrankpp::graph::io::{read_tsv, write_tsv};
    let dataset = generate(&GeneratorConfig::tiny());
    let mut buf = Vec::new();
    write_tsv(&dataset.graph, &mut buf).unwrap();
    let reloaded = read_tsv(buf.as_slice()).unwrap();

    let config = SimrankConfig::paper().with_iterations(4);
    let a = Method::compute(MethodKind::Simrank, &dataset.graph, &config);
    let b = Method::compute(MethodKind::Simrank, &reloaded, &config);
    // Compare through names (ids may permute across the roundtrip).
    for q1 in dataset.graph.queries() {
        for (q2, score) in a.ranked_candidates(q1, 3) {
            let r1 = reloaded
                .query_by_name(dataset.graph.query_name(q1).unwrap())
                .unwrap();
            let r2 = reloaded
                .query_by_name(dataset.graph.query_name(q2).unwrap())
                .unwrap();
            assert!(
                (b.score(r1, r2) - score).abs() < 1e-9,
                "score mismatch after TSV roundtrip"
            );
        }
    }
}
