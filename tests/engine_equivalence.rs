//! Sparse-engine ⇔ dense-oracle equivalence for every transition the unified
//! kernel supports, with `prune_threshold = 0` (the exactness contract).
//!
//! Fixtures: the paper's Figure 3 graph, the K2,2 complete-bipartite fixture,
//! and a seeded `synth` random graph — plain and weighted, spread on and off.

use simrankpp::core::engine::{self, reference, UniformTransition, WeightedTransition};
use simrankpp::core::simrank::{simrank, simrank_dense};
use simrankpp::core::weighted::{weighted_simrank_dense, weighted_simrank_with_spread, SpreadMode};
use simrankpp::core::EvidenceKind;
use simrankpp::graph::fixtures::{figure3_graph, figure4_k22};
use simrankpp::prelude::*;
use simrankpp::synth::generator::{generate, GeneratorConfig};

fn fixtures() -> Vec<(&'static str, ClickGraph)> {
    let synth = generate(&GeneratorConfig::tiny()).graph;
    vec![
        ("figure3", figure3_graph()),
        ("k22", figure4_k22()),
        ("synth_tiny", synth),
    ]
}

fn cfg(k: usize) -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(k)
        .with_prune_threshold(0.0)
        .with_weight_kind(WeightKind::Clicks)
}

#[test]
fn plain_sparse_matches_dense_on_all_fixtures() {
    for (name, g) in fixtures() {
        for k in [1, 3, 6] {
            let s = simrank(&g, &cfg(k));
            let d = simrank_dense(&g, &cfg(k));
            let dq = s.queries.max_abs_diff(&d.queries);
            let da = s.ads.max_abs_diff(&d.ads);
            assert!(dq < 1e-10, "{name} k={k}: query drift {dq}");
            assert!(da < 1e-10, "{name} k={k}: ad drift {da}");
        }
    }
}

#[test]
fn weighted_sparse_matches_dense_spread_on_and_off() {
    for (name, g) in fixtures() {
        for spread in [SpreadMode::Exponential, SpreadMode::Off] {
            for k in [1, 4] {
                let s = weighted_simrank_with_spread(&g, &cfg(k), EvidenceKind::Geometric, spread);
                let (dq_mat, da_mat) = weighted_simrank_dense(&g, &cfg(k), spread);
                let dq = s.raw_queries.max_abs_diff(&dq_mat);
                let da = s.raw_ads.max_abs_diff(&da_mat);
                assert!(dq < 1e-10, "{name} {spread:?} k={k}: query drift {dq}");
                assert!(da < 1e-10, "{name} {spread:?} k={k}: ad drift {da}");
            }
        }
    }
}

#[test]
fn weighted_with_uniform_weights_equals_plain_engine() {
    // Equal edge weights collapse W(q,i) to 1/N(q): the two transitions must
    // produce identical scores on the complete-bipartite fixture.
    let g = figure4_k22();
    let plain = simrank(&g, &cfg(5));
    let weighted = weighted_simrank_with_spread(
        &g,
        &cfg(5),
        EvidenceKind::Geometric,
        SpreadMode::Exponential,
    );
    assert!(plain.queries.max_abs_diff(&weighted.raw_queries) < 1e-14);
    assert!(plain.ads.max_abs_diff(&weighted.raw_ads) < 1e-14);
}

#[test]
fn flat_accumulation_matches_hashmap_reference_path() {
    // The historical hash-map path and the flat sorted-pair path must agree
    // to rounding for both transitions on every fixture.
    for (name, g) in fixtures() {
        let c = cfg(5);
        let flat_u = engine::run(&g, &c, &UniformTransition);
        let hash_u = reference::run_hashmap(&g, &c, &UniformTransition);
        assert!(
            flat_u.queries.max_abs_diff(&hash_u.queries) < 1e-12,
            "{name}: uniform drift {}",
            flat_u.queries.max_abs_diff(&hash_u.queries)
        );
        let t = WeightedTransition {
            kind: WeightKind::Clicks,
            spread: SpreadMode::Exponential,
        };
        let flat_w = engine::run(&g, &c, &t);
        let hash_w = reference::run_hashmap(&g, &c, &t);
        assert!(
            flat_w.queries.max_abs_diff(&hash_w.queries) < 1e-12,
            "{name}: weighted drift {}",
            flat_w.queries.max_abs_diff(&hash_w.queries)
        );
        assert!(flat_w.ads.max_abs_diff(&hash_w.ads) < 1e-12);
    }
}

#[test]
fn diagnostics_shape_is_uniform_across_variants() {
    // Both variants run the same engine, so their diagnostics have the same
    // shape: one (pair_counts, max_delta) entry per executed iteration.
    let g = figure3_graph();
    let plain = simrank(&g, &cfg(6));
    let weighted = weighted_simrank_with_spread(
        &g,
        &cfg(6),
        EvidenceKind::Geometric,
        SpreadMode::Exponential,
    );
    for (pc, md, it) in [
        (&plain.pair_counts, &plain.max_deltas, plain.iterations_run),
        (
            &weighted.pair_counts,
            &weighted.max_deltas,
            weighted.iterations_run,
        ),
    ] {
        assert_eq!(pc.len(), 6);
        assert_eq!(md.len(), 6);
        assert_eq!(it, 6);
        assert!(md.windows(2).all(|w| w[1] <= w[0] + 1e-12), "deltas grow");
    }
    // Uniform weights on Figure 3: the two variants see identical pair
    // support, so the stored-pair trajectories coincide.
    assert_eq!(plain.pair_counts, weighted.pair_counts);
}

#[test]
fn parallel_engine_matches_serial_on_synth_graph() {
    let mut gen = GeneratorConfig::tiny();
    gen.n_queries = 300;
    gen.n_ads = 200;
    let g = generate(&gen).graph;
    let serial = simrank(&g, &cfg(4));
    let parallel = simrank(&g, &cfg(4).with_threads(4));
    let drift = serial.queries.max_abs_diff(&parallel.queries);
    assert!(drift < 1e-9, "parallel drifted by {drift}");
    assert_eq!(serial.pair_counts, parallel.pair_counts);
}
