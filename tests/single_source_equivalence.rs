//! Differential harness for the on-demand single-source engine (ISSUE 6).
//!
//! The all-pairs engine is the oracle. The suite pins four contracts:
//!
//! * **Linearized row == all-pairs row.** With the *exact* diagonal
//!   correction (read off a converged all-pairs run) the linearized series
//!   reproduces every row of the converged matrix to series-truncation
//!   accuracy, for the uniform and the weighted transition alike. With the
//!   *estimated* correction (the production precompute) rows stay within
//!   the estimator's documented envelope.
//! * **Monte-Carlo top-k tracks the exact scores.** The batched coupled-walk
//!   estimator (`mc_topk_into`) is unbiased for the random-surfer model, so
//!   with enough walks each reported estimate lands within a statistical
//!   bound of the converged engine score.
//! * **Top-k sets agree off knife edges.** Single-source and all-pairs
//!   top-k may legitimately swap candidates whose scores differ by less
//!   than the approximation error; any disagreement must be confined to
//!   that regime, and the sorted score sequences must match throughout.
//! * **Cache hits are byte-identical to cache misses, across generations.**
//!   The serve-side row cache stores rendered responses, so a warm answer
//!   can never drift from the cold answer that populated it — before or
//!   after an `update` hot-swap bumps the cache generation.

use proptest::prelude::*;
use simrankpp::core::engine::{self, Transition, UniformTransition, WeightedTransition};
use simrankpp::core::montecarlo::{mc_topk_into, McConfig};
use simrankpp::core::weighted::SpreadMode;
use simrankpp::core::{DiagonalCorrection, RowWorkspace, SingleSourceEngine};
use simrankpp::prelude::*;
use simrankpp::synth::generator::{generate, GeneratorConfig};

fn synth_graph(n_topics: usize, n_queries: usize, seed: u64, dense: bool) -> ClickGraph {
    let mut gen = GeneratorConfig::tiny().with_seed(seed);
    gen.n_topics = n_topics;
    gen.n_queries = n_queries;
    gen.n_ads = (n_queries * 2 / 3).max(4);
    gen.max_ads_per_query = if dense { 12 } else { 4 };
    generate(&gen).graph
}

/// A (near-)converged all-pairs configuration: the oracle every property
/// compares against. Unpruned, so no knife-edge pair drops.
fn oracle_cfg() -> SimrankConfig {
    SimrankConfig::paper()
        .with_iterations(60)
        .with_weight_kind(WeightKind::Clicks)
}

/// Asserts one single-source row equals the matrix row of a converged run,
/// in both directions (no spurious entries, none missing), to `tol`.
fn assert_row_close(
    oracle: &simrankpp::core::ScoreMatrix,
    q: QueryId,
    row: &[(QueryId, f64)],
    tol: f64,
    what: &str,
) {
    for &(other, score) in row {
        let want = oracle.get(q.0, other.0);
        assert!(
            (score - want).abs() < tol,
            "{what}: S({}, {}) = {score:.8}, oracle {want:.8}",
            q.0,
            other.0
        );
    }
    let (ids, scores) = oracle.row(q.0);
    for (&other, &want) in ids.iter().zip(scores) {
        let got = row
            .iter()
            .find(|&&(id, _)| id.0 == other)
            .map(|&(_, s)| s)
            .unwrap_or(0.0);
        assert!(
            (got - want).abs() < tol,
            "{what}: oracle pair ({}, {other}) = {want:.8} missing/drifted ({got:.8})",
            q.0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn linearized_rows_match_converged_all_pairs(
        n_topics in 1usize..4,
        n_queries in 24usize..72,
        seed in 0u64..1_000_000,
        weighted_sel in 0u8..2,
    ) {
        let g = synth_graph(n_topics, n_queries, seed, false);
        let c = oracle_cfg();
        let (run, factors) = if weighted_sel == 1 {
            let t = WeightedTransition { kind: WeightKind::Clicks, spread: SpreadMode::Exponential };
            (engine::run(&g, &c, &t), t.factors(&g))
        } else {
            (engine::run(&g, &c, &UniformTransition), UniformTransition.factors(&g))
        };

        // Exact correction: the linearized series must reproduce the
        // converged matrix to series-truncation accuracy.
        let exact = DiagonalCorrection::from_scores(
            &g, &factors, c.c1, c.c2, &run.queries, &run.ads);
        let eng = SingleSourceEngine::with_correction(&c, factors.clone(), exact);
        let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
        let mut row = Vec::new();
        for q in g.queries() {
            eng.row_into(&g, q, &mut ws, &mut row);
            assert_row_close(&run.queries, q, &row, 1e-6, "exact-correction row");
        }

        // Estimated correction: the production precompute's envelope.
        let estimated = DiagonalCorrection::estimate(&g, &factors, &c);
        let eng = SingleSourceEngine::with_correction(&c, factors, estimated);
        for q in g.queries() {
            eng.row_into(&g, q, &mut ws, &mut row);
            assert_row_close(&run.queries, q, &row, 0.02, "estimated-correction row");
        }
    }

    #[test]
    fn mc_topk_estimates_within_statistical_bounds(
        n_queries in 24usize..60,
        seed in 0u64..1_000_000,
        source in 0u32..24,
    ) {
        let g = synth_graph(2, n_queries, seed, false);
        let c = oracle_cfg();
        let run = engine::run(&g, &c, &UniformTransition);
        let q = QueryId(source % g.n_queries() as u32);
        let mc = McConfig { walks: 20_000, ..McConfig::default() };
        let mut top = Vec::new();
        mc_topk_into(&g, q, 10, &c, &mc, &mut top);
        // 20k coupled walks put the standard error well under 0.01; 0.05
        // also absorbs the max_steps truncation tail.
        for &(other, est) in &top {
            let want = run.queries.get(q.0, other.0);
            prop_assert!(
                (est - want).abs() < 0.05,
                "MC S({}, {}) = {est:.4}, oracle {want:.4}", q.0, other.0
            );
        }
    }

    #[test]
    fn top_k_sets_agree_off_knife_edges(
        n_topics in 1usize..4,
        n_queries in 24usize..72,
        seed in 0u64..1_000_000,
    ) {
        let g = synth_graph(n_topics, n_queries, seed, true);
        let c = oracle_cfg();
        let run = engine::run(&g, &c, &UniformTransition);
        let eng = SingleSourceEngine::new(&g, &c, &UniformTransition);
        let mut ws = RowWorkspace::new(g.n_queries(), g.n_ads());
        let tol = 0.02;
        let k = 5;
        let mut ss = Vec::new();
        for q in g.queries() {
            eng.top_k_into(&g, q, k, &mut ws, &mut ss);
            let ap = run.queries.top_k(q.0, k);
            // Sorted score sequences must match even where near-ties swap ids.
            for (i, (&(_, s_ss), &(_, s_ap))) in ss.iter().zip(&ap).enumerate() {
                prop_assert!(
                    (s_ss - s_ap).abs() < tol,
                    "query {}: rank {i} score {s_ss:.6} vs oracle {s_ap:.6}", q.0
                );
            }
            // Any membership difference must be a knife edge: the oracle
            // score of the disputed id within `tol` of the k-th score.
            let threshold = ap.last().map(|&(_, s)| s).unwrap_or(0.0);
            for &(id, _) in &ss {
                if !ap.iter().any(|&(other, _)| other == id.0) {
                    let oracle_score = run.queries.get(q.0, id.0);
                    prop_assert!(
                        (oracle_score - threshold).abs() < tol,
                        "query {}: single-source pick {} (oracle {oracle_score:.6}) is \
                         not knife-edge vs k-th score {threshold:.6}", q.0, id.0
                    );
                }
            }
        }
    }
}

mod serve_cache {
    use super::*;
    use simrankpp::serve::{serve_session, IndexMeta, LiveContext, RewriteIndex, ServeState};

    /// Cold answer == warm answer, byte for byte, in the starting generation
    /// AND in the generation an `update` hot-swap creates.
    #[test]
    fn cache_hits_are_byte_identical_across_generations() {
        let g = synth_graph(2, 40, 0xBEEF, false);
        let cfg = SimrankConfig::paper().with_weight_kind(WeightKind::Clicks);
        let meta = IndexMeta {
            method: MethodKind::WeightedSimrank,
            max_rewrites: 5,
            bid_filtered: false,
            approx_sharding: false,
            kernel: cfg.kernel,
            segments: 0,
        };
        let names: Vec<String> = g
            .queries()
            .take(6)
            .filter_map(|q| g.query_name(q).map(str::to_owned))
            .collect();
        assert!(!names.is_empty(), "synthetic graph must carry query names");
        let q0 = g.query_name(QueryId(0)).unwrap().to_owned();
        let a0 = g.ad_name(AdId(0)).unwrap_or("fresh-ad").to_owned();
        let live = LiveContext::new(
            g,
            MethodKind::WeightedSimrank,
            cfg,
            RewriterConfig::default(),
        )
        .unwrap();
        let state = ServeState::fixed(RewriteIndex::empty(meta)).with_live(live, 64);

        let serve = |input: &str| -> Vec<String> {
            let mut out = Vec::new();
            serve_session(&state, input.as_bytes(), &mut out).unwrap();
            String::from_utf8(out)
                .unwrap()
                .lines()
                .map(str::to_owned)
                .collect()
        };

        // Generation 0: every query cold, then warm — identical lines.
        for name in &names {
            let req = format!("rewrite {name}\nrewrite {name}\n");
            let lines = serve(&req);
            assert_eq!(lines[0], lines[1], "gen 0: warm answer drifted for {name}");
            assert!(lines[0].starts_with("ok\t"), "{}", lines[0]);
        }

        // Hot-swap a delta in; the cache generation bumps and the new
        // generation upholds the same byte-identity.
        let delta_path = std::env::temp_dir().join("simrankpp_ss_equiv_delta.tsv");
        std::fs::write(&delta_path, format!("+\t{q0}\t{a0}\t50\t40\t0.8\n")).unwrap();
        let lines = serve(&format!("update {}\n", delta_path.display()));
        std::fs::remove_file(&delta_path).ok();
        assert!(lines[0].starts_with("updated\t"), "{}", lines[0]);

        for name in &names {
            let req = format!("rewrite {name}\nrewrite {name}\n");
            let lines = serve(&req);
            assert_eq!(lines[0], lines[1], "gen 1: warm answer drifted for {name}");
        }
    }
}
