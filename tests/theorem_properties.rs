//! Property-based tests (proptest) over the paper's theorems and the core
//! invariants of all engines, run on randomized graphs and parameters.

use proptest::prelude::*;
use simrankpp::core::complete_bipartite::{
    km2_evidence_pair_iterates, km2_pair_iterates, km2_pair_limit,
};
use simrankpp::core::evidence::{evidence_exponential, evidence_geometric, EvidenceKind};
use simrankpp::core::pearson::pearson_similarity;
use simrankpp::core::simrank::{simrank, simrank_dense};
use simrankpp::core::weighted::weighted_simrank;
use simrankpp::graph::fixtures::complete_bipartite;
use simrankpp::prelude::*;
use simrankpp::text::{normalize_query, stem, stem_signature};

/// A random small click graph from an edge list strategy.
fn arb_graph() -> impl Strategy<Value = ClickGraph> {
    proptest::collection::vec(((0u32..20), (0u32..15), (1u64..50)), 1..60).prop_map(|edges| {
        let mut b = ClickGraphBuilder::new();
        for (q, a, w) in edges {
            b.add_edge(QueryId(q), AdId(a), EdgeData::from_clicks(w));
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- SimRank invariants -------------------------------------

    #[test]
    fn simrank_scores_in_unit_interval(g in arb_graph(), k in 1usize..6) {
        let r = simrank(&g, &SimrankConfig::paper().with_iterations(k));
        for (_, _, v) in r.queries.iter() {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
        }
        for (_, _, v) in r.ads.iter() {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn simrank_sparse_equals_dense(g in arb_graph(), k in 1usize..5) {
        let cfg = SimrankConfig::paper().with_iterations(k);
        let s = simrank(&g, &cfg);
        let d = simrank_dense(&g, &cfg);
        prop_assert!(s.queries.max_abs_diff(&d.queries) < 1e-9);
        prop_assert!(s.ads.max_abs_diff(&d.ads) < 1e-9);
    }

    #[test]
    fn simrank_monotone_in_iterations(g in arb_graph()) {
        let prev = simrank(&g, &SimrankConfig::paper().with_iterations(2));
        let next = simrank(&g, &SimrankConfig::paper().with_iterations(3));
        for (a, b, v) in next.queries.iter() {
            prop_assert!(v + 1e-12 >= prev.queries.get(a, b));
        }
    }

    #[test]
    fn simrank_decay_monotone(g in arb_graph(), c_low in 0.2f64..0.5, c_high in 0.6f64..0.95) {
        // Higher decay factors can only increase scores.
        let low = simrank(&g, &SimrankConfig::paper().with_decay(c_low, c_low).with_iterations(4));
        let high = simrank(&g, &SimrankConfig::paper().with_decay(c_high, c_high).with_iterations(4));
        for (a, b, v) in low.queries.iter() {
            prop_assert!(high.queries.get(a, b) + 1e-12 >= v);
        }
    }

    // ---------- Evidence invariants -------------------------------------

    #[test]
    fn evidence_bounded_and_monotone(n in 0usize..200) {
        let g = evidence_geometric(n);
        let e = evidence_exponential(n);
        prop_assert!((0.0..=1.0).contains(&g));
        prop_assert!((0.0..=1.0).contains(&e));
        if n > 0 {
            prop_assert!(evidence_geometric(n + 1) >= g);
            prop_assert!(evidence_exponential(n + 1) >= e);
        }
    }

    #[test]
    fn evidence_scores_never_exceed_raw(g in arb_graph(), k in 1usize..5) {
        let cfg = SimrankConfig::paper().with_iterations(k);
        let r = simrankpp::core::evidence::evidence_simrank(&g, &cfg, EvidenceKind::Geometric);
        for (a, b, v) in r.queries.iter() {
            prop_assert!(v <= r.raw.queries.get(a, b) + 1e-12);
        }
    }

    // ---------- Weighted SimRank invariants ------------------------------

    #[test]
    fn weighted_scores_in_unit_interval(g in arb_graph(), k in 1usize..5) {
        let cfg = SimrankConfig::paper()
            .with_iterations(k)
            .with_weight_kind(WeightKind::Clicks);
        let r = weighted_simrank(&g, &cfg, EvidenceKind::Geometric);
        for (_, _, v) in r.queries.iter() {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn weighted_reduces_to_simrank_on_uniform_weights(k in 1usize..5) {
        // Any complete bipartite graph with equal weights: the weighted walk
        // must equal plain SimRank.
        let g = complete_bipartite(3, 4, EdgeData::from_clicks(7));
        let cfg = SimrankConfig::paper()
            .with_iterations(k)
            .with_weight_kind(WeightKind::Clicks);
        let plain = simrank(&g, &cfg);
        let weighted = weighted_simrank(&g, &cfg, EvidenceKind::Geometric);
        prop_assert!(plain.queries.max_abs_diff(&weighted.raw_queries) < 1e-12);
    }

    // ---------- Theorems 6.1 / 6.2 / 7.1 on random parameters ------------

    #[test]
    fn theorem_6_1(c1 in 0.05f64..1.0, c2 in 0.05f64..1.0, k in 1usize..30) {
        // K1,2 pair score ≥ K2,2 pair score at every iteration.
        let k12 = *km2_pair_iterates(1, c1, c2, k).last().unwrap();
        let k22 = *km2_pair_iterates(2, c1, c2, k).last().unwrap();
        prop_assert!(k12 + 1e-12 >= k22);
    }

    #[test]
    fn theorem_6_2_strict_ordering(m in 1usize..6, extra in 1usize..5, c in 0.1f64..0.99, k in 1usize..25) {
        let n = m + extra;
        let pm = *km2_pair_iterates(m, c, c, k).last().unwrap();
        let pn = *km2_pair_iterates(n, c, c, k).last().unwrap();
        prop_assert!(pm > pn, "K_{{{m},2}} ({pm}) must beat K_{{{n},2}} ({pn})");
    }

    #[test]
    fn theorem_6_2_limits(c in 0.1f64..0.999) {
        // With C < 1 the limits differ; they agree only at C = 1.
        let l1 = km2_pair_limit(1, c, c);
        let l2 = km2_pair_limit(2, c, c);
        prop_assert!(l1 > l2);
        let e1 = km2_pair_limit(1, 1.0, 1.0);
        let e2 = km2_pair_limit(2, 1.0, 1.0);
        prop_assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    fn theorem_7_1_proved_case(c in 0.51f64..1.0, k in 2usize..25) {
        // Evidence reverses K1,2 vs K2,2 for C1,C2 > 1/2 and k > 1.
        let p1 = *km2_evidence_pair_iterates(1, c, c, k, EvidenceKind::Geometric).last().unwrap();
        let p2 = *km2_evidence_pair_iterates(2, c, c, k, EvidenceKind::Geometric).last().unwrap();
        prop_assert!(p2 > p1);
    }

    #[test]
    fn km2_recurrence_matches_engine(m in 1usize..5, k in 1usize..5) {
        let g = complete_bipartite(m, 2, EdgeData::from_clicks(1));
        let cfg = SimrankConfig::paper().with_iterations(k);
        let engine = simrank(&g, &cfg).ads.get(0, 1);
        let closed = *km2_pair_iterates(m, 0.8, 0.8, k).last().unwrap();
        prop_assert!((engine - closed).abs() < 1e-12);
    }

    // ---------- Pearson invariants ---------------------------------------

    #[test]
    fn pearson_bounded_and_symmetric(g in arb_graph()) {
        for q1 in g.queries() {
            for q2 in g.queries() {
                let v = pearson_similarity(&g, q1, q2, WeightKind::Clicks);
                prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&v));
                let w = pearson_similarity(&g, q2, q1, WeightKind::Clicks);
                prop_assert!((v - w).abs() < 1e-12);
            }
        }
    }

    // ---------- Text invariants -------------------------------------------

    #[test]
    fn stemmer_never_grows_words(word in "[a-z]{3,20}") {
        prop_assert!(stem(&word).len() <= word.len() + 1, "stem may add at most the 1b 'e'");
    }

    #[test]
    fn stemmer_idempotent(word in "[a-z]{3,15}") {
        let once = stem(&word);
        prop_assert_eq!(stem(&once), once.clone(), "stem(stem(w)) != stem(w) for {}", word);
    }

    #[test]
    fn plural_s_collapses(word in "[a-z]{4,12}") {
        // For words not already ending in s/e oddities, w and w+"s" share a
        // signature.
        prop_assume!(!word.ends_with('s') && !word.ends_with('e') && !word.ends_with('y'));
        prop_assert_eq!(stem_signature(&word), stem_signature(&format!("{word}s")));
    }

    #[test]
    fn normalization_idempotent(raw in "[ a-zA-Z0-9,.!-]{0,40}") {
        let once = normalize_query(&raw);
        prop_assert_eq!(normalize_query(&once), once.clone());
    }

    // ---------- Graph invariants -------------------------------------------

    #[test]
    fn graph_always_validates(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn common_ads_symmetric_and_bounded(g in arb_graph()) {
        for q1 in g.queries() {
            for q2 in g.queries() {
                let c = g.common_ads(q1, q2);
                prop_assert_eq!(c, g.common_ads(q2, q1));
                prop_assert!(c <= g.query_degree(q1).min(g.query_degree(q2)));
            }
        }
    }
}
