//! # Simrank++ — query rewriting through link analysis of the click graph
//!
//! A full Rust reproduction of Antonellis, Garcia-Molina & Chang,
//! *Simrank++: Query rewriting through link analysis of the click graph*
//! (VLDB 2008), including every substrate its evaluation depends on.
//!
//! ## Crates (re-exported here as modules)
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | the §2 weighted bipartite click graph (CSR storage, builders, fixtures, I/O), plus incremental [`GraphDelta`](graph::GraphDelta) batches with dirty-component analysis |
//! | [`core`] | SimRank (§4), evidence-based SimRank (§7), weighted SimRank (§8), Pearson baseline (§9.1), the rewriting front-end (Fig. 2), Monte-Carlo estimation, hybrid text+click scoring |
//! | [`core::engine`](simrankpp_core::engine) | the unified sparse propagation kernel the recursive variants run on: a `Transition` trait for the per-edge walk factor (uniform §4 / weighted §8.2), flat sorted-pair accumulation, shared chunked parallelism, threshold pruning, per-iteration `pair_counts`/max-delta diagnostics, and `SimrankConfig::tolerance` early exit |
//! | [`partition`] | PageRank, Andersen–Chung–Lang push + sweep cuts, five-subgraph extraction (§9.2) |
//! | [`text`] | Porter stemmer, query normalization, stem-dedup (§9.3) |
//! | [`synth`] | synthetic click-graph generator, position-bias click model, simulated editorial judge (Table 6), bids, traffic sampling, click-spam injection |
//! | [`eval`] | §9.4 metrics: coverage, 11-pt precision/recall, P@X, depth bands, desirability prediction (Figures 8–12) |
//! | [`serve`] | the online half of Fig. 2: precomputed top-k [`RewriteIndex`](serve::RewriteIndex), versioned binary/JSON snapshots, incremental rebuilds hot-swapped through an `ArcSwap`-style handle, line-protocol `serve` binary |
//! | [`util`] | fast hashing, top-k selection, online statistics |
//!
//! Engine convergence knobs on [`SimrankConfig`](prelude::SimrankConfig):
//! `iterations` (Jacobi budget), `prune_threshold` (sparsity/accuracy
//! trade-off; `0.0` = exact), `tolerance` (early exit once the max per-pair
//! delta falls to/below it; results report `iterations_run`, `converged`,
//! `max_deltas`, `pair_counts`), and `threads` (chunked parallelism).
//!
//! ## Quickstart
//!
//! ```
//! use simrankpp::prelude::*;
//!
//! // The paper's Figure 3 sample click graph.
//! let graph = simrankpp::graph::fixtures::figure3_graph();
//!
//! // Weighted SimRank (the paper's best method), 7 iterations, C1=C2=0.8.
//! let config = SimrankConfig::paper().with_weight_kind(WeightKind::Clicks);
//! let method = Method::compute(MethodKind::WeightedSimrank, &graph, &config);
//!
//! // Rewrite "camera": the front-end pipeline of Figure 2.
//! let rewriter = Rewriter::new(&graph, method, RewriterConfig::default());
//! let camera = graph.query_by_name("camera").unwrap();
//! let rewrites = rewriter.rewrites(camera, None);
//! assert_eq!(rewrites[0].name.as_deref(), Some("digital camera"));
//! ```

pub use simrankpp_core as core;
pub use simrankpp_eval as eval;
pub use simrankpp_graph as graph;
pub use simrankpp_partition as partition;
pub use simrankpp_serve as serve;
pub use simrankpp_synth as synth;
pub use simrankpp_text as text;
pub use simrankpp_util as util;

/// The most commonly used items in one import.
pub mod prelude {
    pub use simrankpp_core::evidence::EvidenceKind;
    pub use simrankpp_core::{
        EngineMode, KernelKind, Method, MethodKind, Rewrite, Rewriter, RewriterConfig,
        SimrankConfig,
    };
    pub use simrankpp_eval::{run_experiment, ExperimentConfig};
    pub use simrankpp_graph::{
        AdId, ClickGraph, ClickGraphBuilder, EdgeData, NodeRef, QueryId, WeightKind,
    };
    pub use simrankpp_synth::{GeneratorConfig, Grade, World};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let graph = crate::graph::fixtures::figure3_graph();
        let config = SimrankConfig::paper().with_weight_kind(WeightKind::Clicks);
        let method = Method::compute(MethodKind::WeightedSimrank, &graph, &config);
        let rewriter = Rewriter::new(&graph, method, RewriterConfig::default());
        let camera = graph.query_by_name("camera").unwrap();
        let rewrites = rewriter.rewrites(camera, None);
        assert!(!rewrites.is_empty());
    }
}
